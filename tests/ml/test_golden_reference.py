"""Golden tests: the vectorized training layer vs the frozen original.

PR 3 rebuilt ``DecisionTreeRegressor.fit`` (presorted features, one
cumulative-sum sweep per node, iterative frontier), parallelized
``RandomForestRegressor.fit`` and ``grid_search``, and added
cross-candidate work sharing to the forest grid search.  All of that is
required to be **bit-identical** to the original recursive sequential
implementation, which is preserved verbatim in ``reference_impl.py``.
Every comparison here uses exact equality — no tolerances.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.model_selection import grid_search
from repro.ml.tree import DecisionTreeRegressor

from . import reference_impl as ref

TREE_CONFIGS = [
    {},
    {"max_depth": 3},
    {"min_samples_leaf": 4},
    {"min_samples_split": 10},
    {"max_features": "sqrt", "random_state": 0},
    {"max_features": "log2", "random_state": 5},
    {"max_features": 0.5, "random_state": 1},
    {"max_features": 2, "random_state": 9},
    {"max_depth": 6, "max_features": "sqrt", "random_state": 3,
     "min_samples_leaf": 2},
]


def _dataset(seed, n, m, constant=False):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, m))
    y = np.sin(3 * X[:, 0]) + 0.3 * rng.standard_normal(n)
    # Quantize one feature so duplicate values (tie handling) are exercised.
    X[:, 0] = np.round(X[:, 0], 1)
    if constant:
        y = np.full(n, 1e10)
    return X, y, rng.uniform(size=(37, m))


@pytest.mark.parametrize("shape", [(60, 3), (150, 8), (250, 30), (40, 1)])
def test_tree_bit_identical_to_reference(shape):
    X, y, X_query = _dataset(hash(shape) % 1000, *shape)
    for config in TREE_CONFIGS:
        old = ref.DecisionTreeRegressor(**config).fit(X, y)
        new = DecisionTreeRegressor(**config).fit(X, y)
        assert np.array_equal(old.predict(X_query), new.predict(X_query)), config
        assert np.array_equal(
            old.feature_importances_, new.feature_importances_
        ), config
        assert old.depth() == new.depth(), config
        assert old.num_leaves() == new.num_leaves(), config


def test_tree_constant_huge_labels_stay_leaf():
    """Near-zero variance from float rounding must not create splits."""
    X, y, X_query = _dataset(7, 90, 30, constant=True)
    for config in TREE_CONFIGS:
        old = ref.DecisionTreeRegressor(**config).fit(X, y)
        new = DecisionTreeRegressor(**config).fit(X, y)
        assert np.array_equal(old.predict(X_query), new.predict(X_query))
        assert old.num_leaves() == new.num_leaves() == 1


@pytest.mark.parametrize("config", [
    {"n_estimators": 10, "random_state": 0},
    {"n_estimators": 15, "random_state": 3, "max_depth": 5},
    {"n_estimators": 8, "random_state": 1, "bootstrap": False},
    {"n_estimators": 12, "random_state": 2, "min_samples_leaf": 3,
     "max_features": "sqrt"},
])
def test_forest_bit_identical_to_reference(config):
    X, y, X_query = _dataset(11, 120, 12)
    old = ref.RandomForestRegressor(**config).fit(X, y)
    new = RandomForestRegressor(**config).fit(X, y)
    assert np.array_equal(old.predict(X_query), new.predict(X_query))
    assert np.array_equal(old.feature_importances_, new.feature_importances_)
    assert np.array_equal(old.predict_std(X_query), new.predict_std(X_query))


def test_forest_grid_search_bit_identical_to_reference():
    """The work-sharing forest grid path (prefix trees across
    ``n_estimators``, depth-cap reuse, shared per-tree predictions) must
    reproduce every candidate's CV score exactly."""
    X, y, _ = _dataset(21, 100, 10)
    grid = {
        "n_estimators": [5, 10],
        "max_depth": [None, 4, 16],
        "min_samples_leaf": [1, 2],
        "min_samples_split": [2, 4],
    }
    old_best, old_score, old_results = ref.grid_search(
        ref.RandomForestRegressor(random_state=0, max_features="sqrt"),
        grid, X, y, n_splits=3, seed=0,
    )
    new = grid_search(
        RandomForestRegressor(random_state=0, max_features="sqrt"),
        grid, X, y, n_splits=3, seed=0,
    )
    assert new.best_params == old_best
    assert new.best_score == old_score
    assert len(new.results) == len(old_results)
    for (old_params, old_mean), (new_params, new_mean) in zip(
        old_results, new.results
    ):
        assert old_params == new_params
        assert old_mean == new_mean


def test_generic_grid_search_bit_identical_to_reference():
    """Non-forest models take the generic path; it must match too."""
    X, y, _ = _dataset(31, 90, 4)
    grid = {"max_depth": [2, 4, 8], "min_samples_leaf": [1, 3]}
    old_best, old_score, old_results = ref.grid_search(
        ref.DecisionTreeRegressor(random_state=0), grid, X, y,
        n_splits=3, seed=2,
    )
    new = grid_search(
        DecisionTreeRegressor(random_state=0), grid, X, y, n_splits=3, seed=2
    )
    assert new.best_params == old_best
    assert new.best_score == old_score
    for (old_params, old_mean), (new_params, new_mean) in zip(
        old_results, new.results
    ):
        assert old_params == new_params
        assert old_mean == new_mean
