"""Unit tests for the kNN regressor."""

import numpy as np
import pytest

from repro.ml.neighbors import KNeighborsRegressor


def test_one_neighbor_memorizes():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array([10.0, 20.0, 30.0])
    model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
    assert np.allclose(model.predict(X), y)


def test_k_equals_n_returns_mean():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([1.0, 2.0, 3.0, 4.0])
    model = KNeighborsRegressor(n_neighbors=4).fit(X, y)
    assert model.predict([[1.5]])[0] == pytest.approx(y.mean())


def test_distance_weighting_prefers_close_points():
    X = np.array([[0.0], [10.0]])
    y = np.array([0.0, 1.0])
    uniform = KNeighborsRegressor(n_neighbors=2, weights="uniform").fit(X, y)
    weighted = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
    probe = [[1.0]]
    assert uniform.predict(probe)[0] == pytest.approx(0.5)
    assert weighted.predict(probe)[0] < 0.5


def test_standardization_balances_feature_scales():
    rng = np.random.default_rng(0)
    n = 200
    signal = rng.uniform(-1, 1, size=n)
    noise_feature = rng.uniform(-1000, 1000, size=n)
    X = np.column_stack([signal, noise_feature])
    y = signal
    model = KNeighborsRegressor(n_neighbors=5).fit(X[:150], y[:150])
    predictions = model.predict(X[150:])
    correlation = np.corrcoef(predictions, y[150:])[0, 1]
    assert correlation > 0.6


def test_validation():
    with pytest.raises(ValueError):
        KNeighborsRegressor(n_neighbors=0)
    with pytest.raises(ValueError):
        KNeighborsRegressor(weights="bogus")
    with pytest.raises(ValueError, match="fewer"):
        KNeighborsRegressor(n_neighbors=10).fit(np.zeros((3, 1)), np.zeros(3))
    with pytest.raises(RuntimeError):
        KNeighborsRegressor().predict([[0.0]])


def test_clone_params():
    model = KNeighborsRegressor(n_neighbors=7, weights="distance")
    clone = model.clone()
    assert clone.get_params() == model.get_params()
