"""Unit tests for the random forest regressor."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import pearson_r


def _regression_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 5))
    y = np.sin(2 * X[:, 0]) + 0.5 * X[:, 1] + 0.05 * rng.standard_normal(n)
    return X, y


def test_fits_nonlinear_function():
    X, y = _regression_data()
    forest = RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y)
    predictions = forest.predict(X)
    assert pearson_r(y, predictions) > 0.97


def test_generalizes_to_test_set():
    X, y = _regression_data(400)
    forest = RandomForestRegressor(n_estimators=40, random_state=1)
    forest.fit(X[:300], y[:300])
    assert pearson_r(y[300:], forest.predict(X[300:])) > 0.9


def test_feature_importances_sum_to_one():
    X, y = _regression_data()
    forest = RandomForestRegressor(n_estimators=20, random_state=2).fit(X, y)
    assert forest.feature_importances_.sum() == pytest.approx(1.0)
    # Features 0 and 1 carry the signal.
    top_two = set(np.argsort(forest.feature_importances_)[-2:])
    assert top_two == {0, 1}


def test_deterministic_given_seed():
    X, y = _regression_data(100)
    a = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y)
    b = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y)
    assert np.array_equal(a.predict(X), b.predict(X))


def test_seed_changes_model():
    X, y = _regression_data(100)
    a = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y)
    b = RandomForestRegressor(n_estimators=10, random_state=4).fit(X, y)
    assert not np.array_equal(a.predict(X), b.predict(X))


def test_bootstrap_off_uses_all_rows():
    X, y = _regression_data(80)
    forest = RandomForestRegressor(
        n_estimators=5, bootstrap=False, max_features=None, random_state=0
    ).fit(X, y)
    # Without bootstrap or feature sampling all trees are identical.
    preds = np.stack([t.predict(X) for t in forest.estimators_])
    assert np.allclose(preds, preds[0])


def test_predictions_within_label_range():
    X, y = _regression_data()
    forest = RandomForestRegressor(n_estimators=15, random_state=5).fit(X, y)
    predictions = forest.predict(X)
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9


def test_predict_std_nonnegative():
    X, y = _regression_data(100)
    forest = RandomForestRegressor(n_estimators=10, random_state=6).fit(X, y)
    std = forest.predict_std(X)
    assert np.all(std >= 0)


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        RandomForestRegressor().predict([[0.0]])


def test_invalid_n_estimators():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0).fit(
            np.zeros((5, 2)), np.zeros(5)
        )


def test_clone_params_roundtrip():
    forest = RandomForestRegressor(n_estimators=7, max_depth=3)
    clone = forest.clone()
    assert clone.get_params() == forest.get_params()
    clone.set_params(n_estimators=9)
    assert forest.n_estimators == 7


def test_hyperparameters_forwarded_to_trees():
    X, y = _regression_data(100)
    forest = RandomForestRegressor(
        n_estimators=3, max_depth=2, random_state=0
    ).fit(X, y)
    assert all(tree.depth() <= 2 for tree in forest.estimators_)


def test_max_workers_does_not_change_model():
    X, y = _regression_data(120)
    seq = RandomForestRegressor(
        n_estimators=12, random_state=7, max_workers=1
    ).fit(X, y)
    par = RandomForestRegressor(
        n_estimators=12, random_state=7, max_workers=4
    ).fit(X, y)
    assert np.array_equal(seq.predict(X), par.predict(X))
    assert np.array_equal(seq.feature_importances_, par.feature_importances_)


def test_max_workers_in_params_roundtrip():
    forest = RandomForestRegressor(max_workers=3)
    clone = forest.clone()
    assert clone.max_workers == 3
    clone.set_params(max_workers=None)
    assert forest.max_workers == 3


# ----------------------------------------------------------------------
# Fine-tune machinery: fit_new_trees / refreshed
# ----------------------------------------------------------------------


def test_fit_new_trees_prefix_property():
    """The first k of n new trees equal a k-tree fit: one max-count fit
    serves a whole refresh-size sweep by slicing prefixes."""
    X, y = _regression_data(120)
    forest = RandomForestRegressor(n_estimators=4, random_state=0).fit(X, y)
    many = forest.fit_new_trees(X, y, 8, random_state=17)
    few = forest.fit_new_trees(X, y, 3, random_state=17)
    assert len(many) == 8 and len(few) == 3
    for tree_a, tree_b in zip(many, few):
        assert np.array_equal(tree_a.predict(X), tree_b.predict(X))


def test_fit_new_trees_worker_invariance():
    X, y = _regression_data(150)
    forest = RandomForestRegressor(n_estimators=4, random_state=1).fit(X, y)
    baseline = None
    for mode in ("thread", "process"):
        for workers in (1, 2, 4):
            trees = forest.fit_new_trees(
                X, y, 6, random_state=23,
                max_workers=workers, workers_mode=mode,
            )
            stacked = np.stack([tree.predict(X) for tree in trees])
            if baseline is None:
                baseline = stacked
            else:
                assert np.array_equal(stacked, baseline), (mode, workers)


def test_refreshed_appends_trees():
    X, y = _regression_data(100)
    forest = RandomForestRegressor(n_estimators=5, random_state=2).fit(X, y)
    trees = forest.fit_new_trees(X, y, 3, random_state=5)
    grown = forest.refreshed(trees)
    assert grown.n_estimators == 8
    assert len(grown.estimators_) == 8
    # Original members first, in order; the original forest is untouched.
    for kept, original in zip(grown.estimators_, forest.estimators_):
        assert kept is original
    assert forest.n_estimators == 5
    assert grown.feature_importances_.sum() == pytest.approx(1.0)


def test_refreshed_replace_keeps_size():
    X, y = _regression_data(100)
    forest = RandomForestRegressor(n_estimators=5, random_state=3).fit(X, y)
    trees = forest.fit_new_trees(X, y, 2, random_state=5)
    swapped = forest.refreshed(trees, replace=True)
    assert swapped.n_estimators == 5
    # The two oldest members retired; the three youngest survive.
    assert swapped.estimators_[:3] == forest.estimators_[2:]
    assert swapped.estimators_[3:] == list(trees)


def test_refreshed_requires_fit_and_trees():
    X, y = _regression_data(60)
    fitted = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
    with pytest.raises(RuntimeError):
        RandomForestRegressor(n_estimators=3).refreshed(fitted.estimators_)
    with pytest.raises(ValueError):
        fitted.refreshed([])
    with pytest.raises(ValueError):
        fitted.fit_new_trees(X, y, 0, random_state=0)
