"""Unit tests for linear baselines."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, RidgeRegression


def test_ols_recovers_coefficients():
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, size=(200, 3))
    y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 + 0.001 * rng.standard_normal(200)
    model = LinearRegression().fit(X, y)
    assert model.coef_[0] == pytest.approx(2.0, abs=0.01)
    assert model.coef_[1] == pytest.approx(-1.0, abs=0.01)
    assert model.coef_[2] == pytest.approx(0.0, abs=0.01)
    assert model.intercept_ == pytest.approx(0.5, abs=0.01)


def test_ols_exact_on_noiseless_data():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array([1.0, 3.0, 5.0])
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.predict(X), y, atol=1e-10)


def test_ols_predict_before_fit():
    with pytest.raises(RuntimeError):
        LinearRegression().predict([[1.0]])


def test_ridge_shrinks_towards_zero():
    rng = np.random.default_rng(1)
    X = rng.uniform(-1, 1, size=(100, 2))
    y = 3.0 * X[:, 0]
    small = RidgeRegression(alpha=0.01).fit(X, y)
    large = RidgeRegression(alpha=1000.0).fit(X, y)
    assert abs(large.coef_[0]) < abs(small.coef_[0])


def test_ridge_handles_constant_feature():
    X = np.column_stack([np.ones(50), np.linspace(0, 1, 50)])
    y = 2.0 * X[:, 1]
    model = RidgeRegression(alpha=0.1).fit(X, y)
    predictions = model.predict(X)
    assert np.all(np.isfinite(predictions))


def test_ridge_rejects_negative_alpha():
    with pytest.raises(ValueError):
        RidgeRegression(alpha=-1.0)


def test_clone_and_params():
    model = RidgeRegression(alpha=2.0)
    clone = model.clone()
    assert clone.alpha == 2.0
    clone.set_params(alpha=5.0)
    assert model.alpha == 2.0
    with pytest.raises(ValueError):
        clone.set_params(beta=1)
    lin = LinearRegression()
    assert lin.clone().get_params() == {}
    with pytest.raises(ValueError):
        lin.set_params(alpha=1)
