"""Unit tests for the 30-dim feature vector."""


import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random import random_circuit
from repro.fom.features import (
    FEATURE_GROUPS,
    FEATURE_NAMES,
    GROUP_ORDER,
    NUM_FEATURES,
    feature_dict,
    feature_matrix,
    feature_vector,
)


def test_exactly_thirty_features():
    assert NUM_FEATURES == 30
    assert len(FEATURE_NAMES) == 30
    assert len(set(FEATURE_NAMES)) == 30


def test_every_feature_has_a_group():
    assert set(FEATURE_GROUPS) == set(FEATURE_NAMES)
    assert set(FEATURE_GROUPS.values()) == set(GROUP_ORDER)


def test_group_order_matches_paper_fig3():
    assert GROUP_ORDER[0] == "Liveness"
    assert "Dir. prog. comm." in GROUP_ORDER
    assert GROUP_ORDER[-1] == "Other features"


def test_vector_matches_dict_ordering():
    qc = random_circuit(4, 8, seed=1, measure=True)
    vec = feature_vector(qc)
    d = feature_dict(qc)
    for index, name in enumerate(FEATURE_NAMES):
        assert vec[index] == pytest.approx(d[name])


def test_all_finite_on_edge_cases():
    cases = [
        QuantumCircuit(1),
        QuantumCircuit(2),
    ]
    qc = QuantumCircuit(1, 1)
    qc.h(0)
    qc.measure(0, 0)
    cases.append(qc)
    qc2 = QuantumCircuit(3)
    qc2.barrier()
    cases.append(qc2)
    for case in cases:
        vec = feature_vector(case)
        assert np.all(np.isfinite(vec)), case


def test_depth_independent_size():
    shallow = feature_vector(random_circuit(5, 3, seed=0))
    deep = feature_vector(random_circuit(5, 60, seed=0))
    assert shallow.shape == deep.shape == (30,)


def test_gate_counts_features():
    qc = QuantumCircuit(3, 3)
    qc.h(0).h(1).cx(0, 1).cz(1, 2)
    qc.measure_all()
    d = feature_dict(qc)
    assert d["total_gates"] == 4
    assert d["one_qubit_gates"] == 2
    assert d["two_qubit_gates"] == 2
    assert d["measurement_count"] == 3


def test_liveness_full_activity():
    qc = QuantumCircuit(2)
    qc.h(0).h(1)
    qc.h(0).h(1)
    d = feature_dict(qc)
    assert d["liveness"] == pytest.approx(1.0)
    assert d["idle_streak_max"] == pytest.approx(0.0)


def test_liveness_half_idle():
    qc = QuantumCircuit(2)
    qc.h(0).h(0)  # qubit 1 exists but inactive -> not in active set
    qc.h(1)       # now active in 1 of 2 layers
    d = feature_dict(qc)
    assert d["liveness"] == pytest.approx((1.0 + 0.5) / 2)


def test_parallelism_extremes():
    serial = QuantumCircuit(4)
    for _ in range(4):
        serial.h(0)
    d = feature_dict(serial)
    assert d["parallelism"] == pytest.approx(0.0)

    parallel = QuantumCircuit(4)
    for q in range(4):
        parallel.h(q)
    d = feature_dict(parallel)
    assert d["parallelism"] == pytest.approx(1.0)


def test_directed_communication_counts_orientation():
    qc = QuantumCircuit(3)
    qc.cx(0, 1).cx(1, 0)
    d = feature_dict(qc)
    # Two directed edges over 2 active qubits -> 2 / (2*1) = 1.0
    assert d["directed_communication"] == pytest.approx(1.0)
    assert d["undirected_communication"] == pytest.approx(1.0)


def test_entanglement_ratio():
    qc = QuantumCircuit(4)
    qc.h(0).h(1).h(2).h(3)
    qc.cx(0, 1)
    d = feature_dict(qc)
    assert d["entanglement_ratio"] == pytest.approx(0.5)


def test_critical_two_qubit_fraction_pure_2q_chain():
    qc = QuantumCircuit(3)
    qc.cx(0, 1).cx(1, 2).cx(0, 1)
    d = feature_dict(qc)
    assert d["critical_two_qubit_fraction"] == pytest.approx(1.0)


def test_weighted_depth():
    qc = QuantumCircuit(2)
    qc.h(0)        # 1q layer: weight 1
    qc.cx(0, 1)    # 2q layer: weight 3
    d = feature_dict(qc)
    assert d["weighted_depth"] == pytest.approx(4.0)


def test_parallel_two_qubit_fraction():
    qc = QuantumCircuit(4)
    qc.cx(0, 1).cx(2, 3)   # simultaneous pair
    qc.cx(1, 2)            # alone
    d = feature_dict(qc)
    assert d["parallel_two_qubit_fraction"] == pytest.approx(2 / 3)


def test_feature_matrix_shape():
    circuits = [random_circuit(3, 5, seed=s, measure=True) for s in range(4)]
    X = feature_matrix(circuits)
    assert X.shape == (4, 30)
    assert np.all(np.isfinite(X))


def test_feature_matrix_empty_input_keeps_width():
    assert feature_matrix([]).shape == (0, 30)
    assert feature_matrix([], max_workers=4, workers_mode="process").shape == (0, 30)


def test_feature_matrix_mode_invariant():
    circuits = [random_circuit(4, 12, seed=s, measure=True) for s in range(5)]
    reference = feature_matrix(circuits, max_workers=1)
    for workers, mode in ((2, "thread"), (4, "process")):
        assert np.array_equal(
            feature_matrix(circuits, max_workers=workers, workers_mode=mode),
            reference,
        ), (workers, mode)


def test_ratios_bounded():
    qc = random_circuit(6, 20, seed=5, measure=True)
    d = feature_dict(qc)
    for name in (
        "two_qubit_ratio", "one_qubit_ratio", "liveness", "liveness_min",
        "parallelism", "mean_layer_occupancy", "entanglement_ratio",
        "directed_communication", "undirected_communication",
        "critical_two_qubit_fraction", "parallel_two_qubit_fraction",
    ):
        assert 0.0 <= d[name] <= 1.0, name
