"""FROZEN reference copy of ``repro/fom/features.py`` as of PR 4.

Do not edit (beyond these header lines and absolute imports): the golden
feature tests compare the vectorized single-pass extractor against this
verbatim snapshot of the original multi-pass implementation, the same
pattern ``tests/ml/reference_impl.py`` uses for the tree rewrite.  It
requires ``networkx`` — import this module only behind
``pytest.importorskip("networkx")``.

The 30-dimensional, depth-independent circuit feature vector (Section IV-B).

The proposed figure of merit trains on a fixed-size vectorized circuit
representation that requires *no calibration data*.  Following the paper
(which builds on the MQT Predictor encoding [40] and the SupermarQ feature
suite [41]), the vector contains:

* the hardware-agnostic established metrics (gate counts, circuit depth),
* **liveness** — how actively qubits are utilized,
* **parallelism** — operational concurrency per layer,
* **directed program communication** — the ratio between actual and maximal
  average node degree of the circuit's *directed* interaction graph,
* **gate ratios** — the circuit's operational density,
* interaction-graph statistics and other structural features.

Every feature is a plain float, its size independent of circuit depth.
:data:`FEATURE_NAMES` fixes the ordering; :data:`FEATURE_GROUPS` maps each
feature to one of the seven categories of the paper's Fig. 3.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx
import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag

#: Feature ordering of the vector (length 30).
FEATURE_NAMES: List[str] = [
    # Gate counts (5)
    "total_gates",
    "one_qubit_gates",
    "two_qubit_gates",
    "measurement_count",
    "gates_per_qubit",
    # Circuit depth (3)
    "depth",
    "depth_per_qubit",
    "weighted_depth",
    # Gate ratios (4)
    "two_qubit_ratio",
    "one_qubit_ratio",
    "gate_density",
    "two_qubit_density",
    # Liveness (5)
    "liveness",
    "liveness_std",
    "liveness_min",
    "idle_streak_max",
    "idle_streak_mean",
    # Parallelism (5)
    "parallelism",
    "mean_layer_occupancy",
    "max_layer_occupancy",
    "parallel_two_qubit_fraction",
    "max_simultaneous_two_qubit",
    # Directed program communication (5)
    "directed_communication",
    "undirected_communication",
    "interaction_degree_max",
    "interaction_degree_mean",
    "interaction_clustering",
    # Other (3)
    "active_qubits",
    "entanglement_ratio",
    "critical_two_qubit_fraction",
]

#: Fig. 3 category of every feature.
FEATURE_GROUPS: Dict[str, str] = {
    "total_gates": "Gate counts",
    "one_qubit_gates": "Gate counts",
    "two_qubit_gates": "Gate counts",
    "measurement_count": "Gate counts",
    "gates_per_qubit": "Gate counts",
    "depth": "Circuit depth",
    "depth_per_qubit": "Circuit depth",
    "weighted_depth": "Circuit depth",
    "two_qubit_ratio": "Gate ratios",
    "one_qubit_ratio": "Gate ratios",
    "gate_density": "Gate ratios",
    "two_qubit_density": "Gate ratios",
    "liveness": "Liveness",
    "liveness_std": "Liveness",
    "liveness_min": "Liveness",
    "idle_streak_max": "Liveness",
    "idle_streak_mean": "Liveness",
    "parallelism": "Parallelism",
    "mean_layer_occupancy": "Parallelism",
    "max_layer_occupancy": "Parallelism",
    "parallel_two_qubit_fraction": "Parallelism",
    "max_simultaneous_two_qubit": "Parallelism",
    "directed_communication": "Dir. prog. comm.",
    "undirected_communication": "Dir. prog. comm.",
    "interaction_degree_max": "Dir. prog. comm.",
    "interaction_degree_mean": "Dir. prog. comm.",
    "interaction_clustering": "Dir. prog. comm.",
    "active_qubits": "Other features",
    "entanglement_ratio": "Other features",
    "critical_two_qubit_fraction": "Other features",
}

#: Category display order of Fig. 3.
GROUP_ORDER = [
    "Liveness",
    "Gate ratios",
    "Dir. prog. comm.",
    "Parallelism",
    "Gate counts",
    "Circuit depth",
    "Other features",
]

NUM_FEATURES = len(FEATURE_NAMES)


def feature_vector(circuit: QuantumCircuit) -> np.ndarray:
    """Compute the 30-dim feature vector of a (compiled) circuit."""
    values = feature_dict(circuit)
    return np.array([values[name] for name in FEATURE_NAMES], dtype=float)


def feature_dict(circuit: QuantumCircuit) -> Dict[str, float]:
    """Compute all features as a name -> value dict."""
    active = circuit.active_qubits()
    n_active = max(len(active), 1)
    total = circuit.size()
    one_q = sum(
        1 for ins in circuit.instructions if ins.is_unitary and ins.num_qubits == 1
    )
    two_q = circuit.num_nonlocal_gates()
    measures = sum(1 for ins in circuit.instructions if ins.name == "measure")
    depth = circuit.depth()

    dag = CircuitDag(circuit)
    layers = dag.layers(include_directives=False)
    n_layers = max(len(layers), 1)

    liveness_stats = _liveness(circuit, layers, active)
    parallel_stats = _parallelism(layers, n_active, total)
    comm_stats = _communication(circuit, n_active)
    critical_fraction = _critical_two_qubit_fraction(dag)

    features: Dict[str, float] = {
        "total_gates": float(total),
        "one_qubit_gates": float(one_q),
        "two_qubit_gates": float(two_q),
        "measurement_count": float(measures),
        "gates_per_qubit": total / n_active,
        "depth": float(depth),
        "depth_per_qubit": depth / n_active,
        "weighted_depth": _weighted_depth(layers),
        "two_qubit_ratio": two_q / max(total, 1),
        "one_qubit_ratio": one_q / max(total, 1),
        "gate_density": total / (n_layers * n_active),
        "two_qubit_density": two_q / (n_layers * n_active),
        "active_qubits": float(len(active)),
        "entanglement_ratio": _entanglement_ratio(circuit, active),
        "critical_two_qubit_fraction": critical_fraction,
    }
    features.update(liveness_stats)
    features.update(parallel_stats)
    features.update(comm_stats)
    return features


def _liveness(
    circuit: QuantumCircuit, layers, active
) -> Dict[str, float]:
    """SupermarQ liveness: per-qubit fraction of layers in which it is busy."""
    n_layers = len(layers)
    if n_layers == 0 or not active:
        return {
            "liveness": 0.0,
            "liveness_std": 0.0,
            "liveness_min": 0.0,
            "idle_streak_max": 0.0,
            "idle_streak_mean": 0.0,
        }
    busy = {q: np.zeros(n_layers, dtype=bool) for q in active}
    for index, layer in enumerate(layers):
        for instruction in layer:
            for q in instruction.qubits:
                if q in busy:
                    busy[q][index] = True
    fractions = np.array([b.mean() for b in busy.values()])
    streak_max = []
    for b in busy.values():
        longest = 0
        current = 0
        for flag in b:
            current = 0 if flag else current + 1
            longest = max(longest, current)
        streak_max.append(longest / n_layers)
    streaks = np.array(streak_max)
    return {
        "liveness": float(fractions.mean()),
        "liveness_std": float(fractions.std()),
        "liveness_min": float(fractions.min()),
        "idle_streak_max": float(streaks.max()),
        "idle_streak_mean": float(streaks.mean()),
    }


def _parallelism(layers, n_active: int, total: int) -> Dict[str, float]:
    """SupermarQ parallelism plus layer-occupancy statistics."""
    n_layers = len(layers)
    if n_layers == 0:
        return {
            "parallelism": 0.0,
            "mean_layer_occupancy": 0.0,
            "max_layer_occupancy": 0.0,
            "parallel_two_qubit_fraction": 0.0,
            "max_simultaneous_two_qubit": 0.0,
        }
    if n_active > 1:
        parallelism = (total / n_layers - 1.0) / (n_active - 1.0)
        parallelism = float(np.clip(parallelism, 0.0, 1.0))
    else:
        parallelism = 0.0
    occupancy = []
    two_q_counts = []
    parallel_two_q = 0
    total_two_q = 0
    for layer in layers:
        qubits_busy = sum(len(ins.qubits) for ins in layer)
        occupancy.append(qubits_busy / n_active)
        layer_two_q = sum(1 for ins in layer if ins.num_qubits >= 2)
        two_q_counts.append(layer_two_q)
        total_two_q += layer_two_q
        if layer_two_q >= 2:
            parallel_two_q += layer_two_q
    max_pairs = max(n_active // 2, 1)
    return {
        "parallelism": parallelism,
        "mean_layer_occupancy": float(np.mean(occupancy)),
        "max_layer_occupancy": float(np.max(occupancy)),
        "parallel_two_qubit_fraction": (
            parallel_two_q / total_two_q if total_two_q else 0.0
        ),
        "max_simultaneous_two_qubit": float(max(two_q_counts)) / max_pairs,
    }


def _communication(circuit: QuantumCircuit, n_active: int) -> Dict[str, float]:
    """Directed/undirected program communication and interaction-graph stats."""
    directed_edges = set()
    undirected_edges = set()
    for instruction in circuit.instructions:
        if instruction.is_unitary and instruction.num_qubits == 2:
            a, b = instruction.qubits
            directed_edges.add((a, b))
            undirected_edges.add(tuple(sorted((a, b))))
    if n_active <= 1:
        return {
            "directed_communication": 0.0,
            "undirected_communication": 0.0,
            "interaction_degree_max": 0.0,
            "interaction_degree_mean": 0.0,
            "interaction_clustering": 0.0,
        }
    max_directed = n_active * (n_active - 1)
    max_undirected = max_directed / 2
    graph = nx.Graph()
    graph.add_edges_from(undirected_edges)
    degrees = [d for _, d in graph.degree()] or [0]
    clustering = (
        float(np.mean(list(nx.clustering(graph).values())))
        if graph.number_of_nodes() > 0
        else 0.0
    )
    return {
        "directed_communication": len(directed_edges) / max_directed,
        "undirected_communication": len(undirected_edges) / max_undirected,
        "interaction_degree_max": max(degrees) / (n_active - 1),
        "interaction_degree_mean": float(np.mean(degrees)) / (n_active - 1),
        "interaction_clustering": clustering,
    }


def _weighted_depth(layers) -> float:
    """Depth where a layer containing a two-qubit gate costs 3 time units.

    A calibration-free proxy for circuit duration (two-qubit gates take
    roughly three times as long as single-qubit pulses).
    """
    cost = 0.0
    for layer in layers:
        cost += 3.0 if any(ins.num_qubits >= 2 for ins in layer) else 1.0
    return cost


def _entanglement_ratio(circuit: QuantumCircuit, active) -> float:
    """Fraction of active qubits touched by at least one two-qubit gate."""
    if not active:
        return 0.0
    entangled = set()
    for instruction in circuit.instructions:
        if instruction.is_unitary and instruction.num_qubits >= 2:
            entangled.update(instruction.qubits)
    return len(entangled & set(active)) / len(active)


def _critical_two_qubit_fraction(dag: CircuitDag) -> float:
    """Fraction of operations on the critical path that are two-qubit gates."""
    path = dag.critical_path()
    if not path:
        return 0.0
    two_q = sum(
        1 for index in path
        if dag.nodes[index].instruction.num_qubits >= 2
        and dag.nodes[index].instruction.is_unitary
    )
    return two_q / len(path)


def feature_matrix(circuits) -> np.ndarray:
    """Stack feature vectors of many circuits into an ``(M, 30)`` matrix."""
    return np.vstack([feature_vector(c) for c in circuits])
