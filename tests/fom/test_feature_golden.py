"""Golden tests: the single-pass extractor against the frozen reference.

``tests/fom/reference_features.py`` is a verbatim copy of the multi-pass,
networkx-based implementation (the pattern ``tests/ml/reference_impl.py``
established for the tree rewrite).  The vectorized extractor must agree to
<= 1e-12 on every feature for suite circuits, random circuits across
2-16 qubits, compiled circuits, and directive-heavy edge cases — and it
must do so in a **single traversal** of the instruction list.

The reference needs ``networkx`` (a test-only extra since this PR), so the
whole module skips when it is unavailable.
"""

import numpy as np
import pytest

nx = pytest.importorskip("networkx")

from repro.bench.suite import build_suite  # noqa: E402
from repro.circuits.circuit import QuantumCircuit  # noqa: E402
from repro.circuits.random import random_circuit  # noqa: E402
from repro.fom.features import (  # noqa: E402
    FEATURE_NAMES,
    NUM_FEATURES,
    feature_dict,
    feature_matrix,
    feature_vector,
)

from . import reference_features as reference  # noqa: E402

TOLERANCE = 1e-12


def assert_features_match(circuit, tag):
    ours = feature_vector(circuit)
    golden = reference.feature_vector(circuit)
    for index, name in enumerate(FEATURE_NAMES):
        assert ours[index] == pytest.approx(golden[index], abs=TOLERANCE), (
            f"{tag}: feature {name!r} diverged "
            f"({ours[index]!r} != {golden[index]!r})"
        )


def test_reference_is_the_old_interface():
    assert reference.FEATURE_NAMES == FEATURE_NAMES
    assert reference.NUM_FEATURES == NUM_FEATURES == 30


def test_golden_suite_circuits():
    """Every benchmark family, 2-8 qubits (the full sweep runs in slow)."""
    for entry in build_suite(min_qubits=2, max_qubits=8):
        assert_features_match(entry.circuit, entry.name)


@pytest.mark.slow
def test_golden_full_suite():
    """The paper's full 2-20-qubit suite (acceptance-criterion sweep)."""
    for entry in build_suite(min_qubits=2, max_qubits=20):
        assert_features_match(entry.circuit, entry.name)


def test_golden_random_circuits_2_to_16_qubits():
    for num_qubits in range(2, 17):
        for seed in range(4):
            circuit = random_circuit(
                num_qubits,
                3 * num_qubits,
                seed=seed,
                measure=(seed % 2 == 0),
            )
            assert_features_match(circuit, f"random_{num_qubits}_{seed}")


def test_golden_compiled_circuits():
    """Compiled circuits: the vectors the dataset/serving paths consume."""
    from repro.compiler import compile_circuit
    from repro.hardware import make_q20a

    device = make_q20a()
    for seed, level in ((0, 1), (1, 2), (2, 3)):
        raw = random_circuit(8, 16, seed=seed, measure=True)
        compiled = compile_circuit(
            raw, device, optimization_level=level, seed=seed
        ).circuit
        assert_features_match(compiled, f"compiled_l{level}_s{seed}")


def test_golden_directive_edge_cases():
    cases = {}
    cases["empty"] = QuantumCircuit(2)
    cases["one_qubit"] = QuantumCircuit(1)
    barrier_only = QuantumCircuit(3)
    barrier_only.barrier()
    cases["barrier_only"] = barrier_only
    measure_only = QuantumCircuit(2, 2)
    measure_only.measure(0, 0).measure(1, 1)
    cases["measure_only"] = measure_only
    mixed = QuantumCircuit(4, 4)
    mixed.h(0).barrier().cx(0, 1).barrier(0, 1)
    mixed.measure(0, 0)
    mixed.h(2).cx(2, 3).measure(2, 2)
    mixed.cx(1, 3)          # a gate *after* a measurement on qubit 1's chain
    cases["mixed_directives"] = mixed
    ties = QuantumCircuit(4)
    ties.cx(0, 1).cx(2, 3).cx(1, 2).cx(0, 3).h(1).cx(1, 2)
    cases["chain_ties"] = ties
    for tag, circuit in cases.items():
        assert_features_match(circuit, tag)


def test_feature_extraction_is_single_traversal():
    """Regression for the multi-pass era: one iteration over the list.

    The old implementation walked the instruction list once per feature
    group (size/depth/active_qubits plus a DAG build plus per-helper
    sweeps).  A counting sequence pins the rewrite: ``feature_vector``
    may iterate ``circuit.instructions`` exactly once, and must not build
    a ``CircuitDag`` at all.
    """

    class CountingInstructions(list):
        iterations = 0

        def __iter__(self):
            type(self).iterations = self.iterations + 1
            return super().__iter__()

    circuit = random_circuit(5, 25, seed=3, measure=True)
    circuit.barrier()
    circuit.instructions = CountingInstructions(circuit.instructions)

    import repro.circuits.dag as dag_module

    original_init = dag_module.CircuitDag.__init__

    def forbidden(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("feature extraction built a CircuitDag")

    dag_module.CircuitDag.__init__ = forbidden
    try:
        feature_vector(circuit)
    finally:
        dag_module.CircuitDag.__init__ = original_init
    assert CountingInstructions.iterations == 1


def test_interaction_stats_match_networkx():
    """Cross-check the adjacency-array graph stats against networkx."""
    for seed in range(5):
        circuit = random_circuit(8, 30, seed=seed)
        values = feature_dict(circuit)
        undirected = set()
        for instruction in circuit.instructions:
            if instruction.is_unitary and instruction.num_qubits == 2:
                undirected.add(tuple(sorted(instruction.qubits)))
        graph = nx.Graph()
        graph.add_edges_from(undirected)
        n_active = max(len(circuit.active_qubits()), 1)
        degrees = [d for _, d in graph.degree()] or [0]
        assert values["interaction_degree_max"] == pytest.approx(
            max(degrees) / (n_active - 1), abs=TOLERANCE
        )
        assert values["interaction_degree_mean"] == pytest.approx(
            float(np.mean(degrees)) / (n_active - 1), abs=TOLERANCE
        )
        expected_clustering = (
            float(np.mean(list(nx.clustering(graph).values())))
            if graph.number_of_nodes()
            else 0.0
        )
        assert values["interaction_clustering"] == pytest.approx(
            expected_clustering, abs=TOLERANCE
        )


def test_feature_matrix_worker_invariance():
    circuits = [
        random_circuit(4, 12, seed=seed, measure=True) for seed in range(6)
    ]
    base = feature_matrix(circuits)
    assert base.shape == (6, NUM_FEATURES)
    for workers in (2, 4, None):
        assert np.array_equal(feature_matrix(circuits, max_workers=workers), base)


def test_feature_matrix_empty_input():
    assert feature_matrix([]).shape == (0, NUM_FEATURES)
