"""Unit tests for the established figures of merit."""


import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.fom.metrics import (
    ESTABLISHED_FOMS,
    circuit_depth,
    esp,
    esp_decay_factor,
    expected_fidelity,
    gate_count,
    two_qubit_gate_count,
)
from repro.hardware import make_q20a


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def _native_circuit(device):
    qc = QuantumCircuit(device.num_qubits, device.num_qubits)
    qc.prx(0.3, 0.0, 0)
    qc.cz(0, 1)
    qc.prx(0.2, 0.4, 1)
    qc.measure(0, 0)
    qc.measure(1, 1)
    return qc


def test_gate_count(device):
    qc = _native_circuit(device)
    assert gate_count(qc) == 3
    assert gate_count(qc, two_qubit_only=True) == 1
    assert two_qubit_gate_count(qc) == 1


def test_circuit_depth(device):
    qc = _native_circuit(device)
    assert circuit_depth(qc) == qc.depth()


def test_expected_fidelity_is_product(device):
    qc = _native_circuit(device)
    cal = device.reported_calibration
    expected = (
        cal.one_qubit_fidelity[0]
        * cal.edge_fidelity(0, 1)
        * cal.one_qubit_fidelity[1]
        * cal.readout_fidelity[0]
        * cal.readout_fidelity[1]
    )
    assert expected_fidelity(qc, device) == pytest.approx(expected)


def test_expected_fidelity_uses_reported_by_default(device):
    qc = _native_circuit(device)
    reported = expected_fidelity(qc, device)
    true = expected_fidelity(
        qc, device, calibration=device.true_calibration
    )
    assert reported != pytest.approx(true, abs=1e-12)


def test_expected_fidelity_empty_circuit(device):
    qc = QuantumCircuit(device.num_qubits)
    assert expected_fidelity(qc, device) == pytest.approx(1.0)


def test_expected_fidelity_rejects_three_qubit_gate(device):
    qc = QuantumCircuit(device.num_qubits)
    qc.ccz(0, 1, 2)
    with pytest.raises(ValueError, match="compiled"):
        expected_fidelity(qc, device)


def test_esp_below_expected_fidelity_when_idle(device):
    qc = QuantumCircuit(device.num_qubits, device.num_qubits)
    # Qubit 1 idles while qubit 0 works.
    for _ in range(50):
        qc.prx(0.1, 0.0, 0)
    qc.cz(0, 1)
    qc.measure(0, 0)
    qc.measure(1, 1)
    assert esp(qc, device) < expected_fidelity(qc, device)


def test_esp_equals_fidelity_times_decay(device):
    qc = _native_circuit(device)
    assert esp(qc, device) == pytest.approx(
        expected_fidelity(qc, device) * esp_decay_factor(qc, device)
    )


def test_esp_decay_in_unit_interval(device):
    qc = _native_circuit(device)
    decay = esp_decay_factor(qc, device)
    assert 0.0 < decay <= 1.0


def test_established_foms_registry(device):
    qc = _native_circuit(device)
    assert set(ESTABLISHED_FOMS) == {
        "Number of gates", "Circuit depth", "Expected fidelity", "ESP",
    }
    for name, (fn, higher_better) in ESTABLISHED_FOMS.items():
        value = fn(qc, device)
        assert isinstance(value, float)
        if name in ("Expected fidelity", "ESP"):
            assert higher_better
            assert 0 <= value <= 1
        else:
            assert not higher_better


def test_more_gates_lower_fidelity(device):
    short = QuantumCircuit(device.num_qubits)
    short.cz(0, 1)
    long = QuantumCircuit(device.num_qubits)
    for _ in range(10):
        long.cz(0, 1)
    assert expected_fidelity(long, device) < expected_fidelity(short, device)
