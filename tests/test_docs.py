"""Docs-tree gates: page presence, CLI reference sync, and link integrity.

The CLI reference (``docs/cli.md``) is generated output — CI regenerates
it from the live argparse tree and fails on drift, so the committed page
can never lie about a flag.  The link checker keeps every relative link
(and ``#anchor`` fragment) in ``docs/`` and the README resolving.
"""

import re
from pathlib import Path

import pytest

from repro.cli import render_cli_docs

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS_DIR = REPO_ROOT / "docs"
DOC_PAGES = ["architecture.md", "serving.md", "search.md", "drift.md", "cli.md"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def test_docs_pages_exist():
    for page in DOC_PAGES:
        path = DOCS_DIR / page
        assert path.is_file(), f"missing docs page: docs/{page}"
        assert path.read_text().strip(), f"empty docs page: docs/{page}"


def test_cli_reference_in_sync():
    committed = (DOCS_DIR / "cli.md").read_text()
    assert committed == render_cli_docs(), (
        "docs/cli.md is out of sync with the live CLI -- regenerate with "
        "`PYTHONPATH=src python -m repro docs-cli > docs/cli.md`"
    )


def _anchor_slug(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(markdown: str) -> set:
    return {_anchor_slug(title) for _, title in HEADING_RE.findall(markdown)}


def _links(markdown: str):
    return LINK_RE.findall(FENCE_RE.sub("", markdown))


def _checked_pages():
    pages = [REPO_ROOT / "README.md"]
    pages += sorted(DOCS_DIR.glob("*.md"))
    return pages


@pytest.mark.parametrize("page", _checked_pages(), ids=lambda p: p.name)
def test_relative_links_resolve(page):
    markdown = page.read_text()
    problems = []
    for target in _links(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            page.parent / path_part if path_part else page
        ).resolve()
        if not resolved.exists():
            problems.append(f"{target}: no such file {path_part}")
            continue
        if fragment:
            if resolved.is_dir():
                problems.append(f"{target}: anchor on a directory")
            elif fragment not in _anchors(resolved.read_text()):
                problems.append(f"{target}: no heading for #{fragment}")
    assert not problems, f"broken links in {page.name}:\n" + "\n".join(problems)
