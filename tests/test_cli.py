"""Unit tests for the command-line interface."""


import pytest

from repro.cli import build_parser, main
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import to_qasm


@pytest.fixture
def qasm_file(tmp_path):
    qc = QuantumCircuit(3, 3)
    qc.h(0).cx(0, 1).cx(1, 2)
    qc.measure_all()
    path = tmp_path / "ghz.qasm"
    path.write_text(to_qasm(qc))
    return str(path)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_devices_command(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "Q20-A" in out
    assert "Q20-B" in out
    assert "mean CZ fidelity" in out


def test_compile_command(qasm_file, capsys):
    assert main(["compile", qasm_file, "--device", "q20b", "--level", "2"]) == 0
    captured = capsys.readouterr()
    assert "OPENQASM 2.0;" in captured.out
    assert "prx" in captured.out or "cz" in captured.out
    assert "expected fidelity" in captured.err


def test_execute_command(qasm_file, capsys):
    assert main([
        "execute", qasm_file, "--device", "q20a",
        "--shots", "200", "--level", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "hellinger distance" in out
    assert "counts:" in out


def test_features_command(qasm_file, capsys):
    assert main(["features", qasm_file, "--level", "1"]) == 0
    out = capsys.readouterr().out
    assert "liveness" in out
    assert "parallelism" in out
    assert len(out.strip().splitlines()) == 30


def test_unknown_device_rejected(qasm_file):
    with pytest.raises(SystemExit, match="unknown device"):
        main(["compile", qasm_file, "--device", "bogus"])


def test_zoo_list_enumerates_families(capsys):
    assert main(["zoo", "--list"]) == 0
    out = capsys.readouterr().out
    for family in ("line", "ring", "ladder", "star", "grid", "heavy_hex", "random"):
        assert family in out
    assert "noise tiers" in out
    # The acceptance bar: at least five families enumerated.
    assert sum(1 for line in out.splitlines() if line[:1].isalpha()) - 2 >= 5


def test_zoo_inspect_device(capsys):
    assert main(["zoo", "ring:6:noisy:2"]) == 0
    out = capsys.readouterr().out
    assert "zoo-ring6-noisy-s2" in out
    assert "6 qubits, 6 couplers" in out
    assert "mean CZ fidelity" in out


def test_zoo_bad_spec_rejected():
    with pytest.raises(SystemExit, match="unknown zoo family"):
        main(["zoo", "moebius:8"])
    with pytest.raises(SystemExit, match="unknown noise tier"):
        main(["zoo", "ring:8:pristine"])


def test_compile_on_zoo_device(qasm_file, capsys):
    assert main([
        "compile", qasm_file, "--device", "zoo:ring:6:clean:1", "--level", "2",
    ]) == 0
    captured = capsys.readouterr()
    assert "OPENQASM 2.0;" in captured.out
    assert "zoo-ring6-clean-s1" in captured.err


def test_execute_on_zoo_device(qasm_file, capsys):
    assert main([
        "execute", qasm_file, "--device", "zoo:star:4",
        "--shots", "100", "--level", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "hellinger distance" in out


# ----------------------------------------------------------------------
# predict: the FomService frontend.


@pytest.fixture
def model_file(tmp_path):
    import numpy as np

    from repro.evaluation import save_model
    from repro.predictor import HellingerEstimator

    rng = np.random.default_rng(0)
    estimator = HellingerEstimator(
        param_grid={
            "n_estimators": [4],
            "max_depth": [3],
            "min_samples_leaf": [1],
            "min_samples_split": [2],
        },
        seed=0,
    ).fit(rng.uniform(size=(40, 30)), rng.uniform(size=40))
    path = tmp_path / "model.npz"
    save_model(estimator, path)
    return str(path)


@pytest.fixture
def qasm_dir(tmp_path):
    from repro.circuits.random import random_circuit

    directory = tmp_path / "circuits"
    directory.mkdir()
    for seed in range(3):
        qc = random_circuit(3, 6, seed=seed, measure=True)
        (directory / f"rand_{seed}.qasm").write_text(to_qasm(qc))
    return directory


def test_predict_command_on_files(model_file, qasm_file, capsys):
    assert main([
        "predict", qasm_file, "--model", model_file,
        "--device", "q20a", "--level", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "predicted_hellinger" in out
    assert "ghz" in out
    # Header comment + column header + one row.
    assert len(out.strip().splitlines()) == 3


def test_predict_command_on_directory(model_file, qasm_dir, capsys):
    assert main([
        "predict", str(qasm_dir), "--model", model_file, "--level", "1",
    ]) == 0
    out = capsys.readouterr().out
    for seed in range(3):
        assert f"rand_{seed}" in out


def test_predict_command_foms_panel(model_file, qasm_dir, capsys):
    assert main([
        "predict", str(qasm_dir), "--model", model_file,
        "--level", "1", "--foms",
    ]) == 0
    out = capsys.readouterr().out
    for column in ("Number of gates", "Circuit depth", "Expected fidelity",
                   "ESP", "Proposed approach"):
        assert column in out


def test_predict_command_rejects_bad_inputs(model_file, qasm_dir, tmp_path, qasm_file):
    with pytest.raises(SystemExit, match="no such file or directory"):
        main(["predict", "missing.qasm", "--model", model_file])
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(SystemExit, match="no .qasm files"):
        main(["predict", str(empty), "--model", model_file])
    not_model = tmp_path / "junk.npz"
    not_model.write_text("not a model")
    with pytest.raises(SystemExit, match="not a repro model file"):
        main(["predict", qasm_file, "--model", str(not_model)])


def test_predict_command_rejects_bad_chunk_size(model_file, qasm_file):
    with pytest.raises(SystemExit, match="chunk_size must be positive"):
        main(["predict", qasm_file, "--model", model_file, "--chunk-size", "0"])


# ----------------------------------------------------------------------
# compile-search and predict --search: the beam-search frontends.


def test_compile_search_command(model_file, qasm_dir, tmp_path, capsys):
    store = tmp_path / "leaderboard"
    assert main([
        "compile-search", str(qasm_dir), "--model", model_file,
        "--beam-width", "2", "--generations", "1",
        "--store", str(store), "--workers-mode", "thread",
    ]) == 0
    captured = capsys.readouterr()
    assert "predicted" in captured.out
    assert "search" in captured.out
    assert "searches=" in captured.err
    assert list(store.glob("leaderboard_*.json"))
    # Warm rerun reports incumbents.
    assert main([
        "compile-search", str(qasm_dir), "--model", model_file,
        "--beam-width", "2", "--generations", "1",
        "--store", str(store), "--workers-mode", "thread",
    ]) == 0
    captured = capsys.readouterr()
    assert "leaderboard" in captured.out
    assert "warm_starts=3" in captured.err


def test_compile_search_emit_qasm(model_file, qasm_file, capsys):
    assert main([
        "compile-search", qasm_file, "--model", model_file,
        "--beam-width", "2", "--generations", "0",
        "--workers-mode", "thread", "--emit-qasm",
    ]) == 0
    assert "OPENQASM 2.0;" in capsys.readouterr().out


def test_predict_command_search(model_file, qasm_dir, tmp_path, capsys):
    store = tmp_path / "leaderboard"
    assert main([
        "predict", str(qasm_dir), "--model", model_file, "--search",
        "--search-store", str(store), "--beam-width", "2",
        "--generations", "1", "--workers-mode", "thread",
    ]) == 0
    out = capsys.readouterr().out
    assert "level: search" in out
    assert "predicted_hellinger" in out
    assert list(store.glob("leaderboard_*.json"))


# ----------------------------------------------------------------------
# docs-cli: the generated CLI reference.


def test_docs_cli_emits_every_subcommand(capsys):
    assert main(["docs-cli"]) == 0
    page = capsys.readouterr().out
    for command in ("compile", "compile-search", "execute", "features",
                    "predict", "serve", "client", "study", "devices",
                    "zoo", "docs-cli"):
        assert f"## repro {command}" in page
    assert page.startswith("<!-- Generated by")


def test_docs_cli_check_mode(tmp_path, capsys):
    from repro.cli import render_cli_docs

    page = tmp_path / "cli.md"
    page.write_text(render_cli_docs())
    assert main(["docs-cli", "--check", str(page)]) == 0
    assert "in sync" in capsys.readouterr().out
    page.write_text("stale contents\n")
    with pytest.raises(SystemExit, match="out of sync"):
        main(["docs-cli", "--check", str(page)])
    with pytest.raises(SystemExit, match="cannot read"):
        main(["docs-cli", "--check", str(tmp_path / "missing.md")])


def test_docs_cli_output_width_pinned(capsys, monkeypatch):
    from repro.cli import render_cli_docs

    monkeypatch.setenv("COLUMNS", "210")
    wide = render_cli_docs()
    monkeypatch.setenv("COLUMNS", "60")
    narrow = render_cli_docs()
    assert wide == narrow


# ----------------------------------------------------------------------
# The zoo spec grammar is quoted from one constant everywhere.


def test_zoo_spec_grammar_shared_across_parsers():
    from repro.hardware import ZOO_SPEC_GRAMMAR

    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if hasattr(action, "choices") and "zoo" in (action.choices or {})
    )
    for command in ("predict", "study", "zoo", "compile-search"):
        assert ZOO_SPEC_GRAMMAR in subparsers.choices[command].format_help()


def test_drift_study_command(tmp_path, capsys):
    cache_dir = str(tmp_path / "drift-cache")
    argv = [
        "drift-study", "--device", "zoo:line:6:clean:1", "--steps", "1",
        "--refresh-trees", "2", "--shots", "150", "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "drift study: zoo-line6-clean-s1" in out
    assert "stale_r" in out and "retrain_r" in out and "ft2_r" in out
    assert "cached result" not in out
    # Warm rerun: same command reads the finished study back.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cached result" in out


def test_drift_study_command_json(tmp_path, capsys):
    import json

    argv = [
        "drift-study", "--device", "zoo:line:6:clean:1", "--steps", "1",
        "--refresh-trees", "2", "--shots", "150",
        "--cache-dir", str(tmp_path / "cache"), "--json",
    ]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["from_cache"] is False
    assert len(payload["steps"]) == 1
    assert payload["steps"][0]["fine_tune"][0]["trees"] == 2


def test_drift_study_command_rejects_bad_knobs(tmp_path):
    with pytest.raises(SystemExit):
        main(["drift-study", "--steps", "0"])
