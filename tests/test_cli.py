"""Unit tests for the command-line interface."""


import pytest

from repro.cli import build_parser, main
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import to_qasm


@pytest.fixture
def qasm_file(tmp_path):
    qc = QuantumCircuit(3, 3)
    qc.h(0).cx(0, 1).cx(1, 2)
    qc.measure_all()
    path = tmp_path / "ghz.qasm"
    path.write_text(to_qasm(qc))
    return str(path)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_devices_command(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "Q20-A" in out
    assert "Q20-B" in out
    assert "mean CZ fidelity" in out


def test_compile_command(qasm_file, capsys):
    assert main(["compile", qasm_file, "--device", "q20b", "--level", "2"]) == 0
    captured = capsys.readouterr()
    assert "OPENQASM 2.0;" in captured.out
    assert "prx" in captured.out or "cz" in captured.out
    assert "expected fidelity" in captured.err


def test_execute_command(qasm_file, capsys):
    assert main([
        "execute", qasm_file, "--device", "q20a",
        "--shots", "200", "--level", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "hellinger distance" in out
    assert "counts:" in out


def test_features_command(qasm_file, capsys):
    assert main(["features", qasm_file, "--level", "1"]) == 0
    out = capsys.readouterr().out
    assert "liveness" in out
    assert "parallelism" in out
    assert len(out.strip().splitlines()) == 30


def test_unknown_device_rejected(qasm_file):
    with pytest.raises(SystemExit, match="unknown device"):
        main(["compile", qasm_file, "--device", "bogus"])


def test_zoo_list_enumerates_families(capsys):
    assert main(["zoo", "--list"]) == 0
    out = capsys.readouterr().out
    for family in ("line", "ring", "ladder", "star", "grid", "heavy_hex", "random"):
        assert family in out
    assert "noise tiers" in out
    # The acceptance bar: at least five families enumerated.
    assert sum(1 for line in out.splitlines() if line[:1].isalpha()) - 2 >= 5


def test_zoo_inspect_device(capsys):
    assert main(["zoo", "ring:6:noisy:2"]) == 0
    out = capsys.readouterr().out
    assert "zoo-ring6-noisy-s2" in out
    assert "6 qubits, 6 couplers" in out
    assert "mean CZ fidelity" in out


def test_zoo_bad_spec_rejected():
    with pytest.raises(SystemExit, match="unknown zoo family"):
        main(["zoo", "moebius:8"])
    with pytest.raises(SystemExit, match="unknown noise tier"):
        main(["zoo", "ring:8:pristine"])


def test_compile_on_zoo_device(qasm_file, capsys):
    assert main([
        "compile", qasm_file, "--device", "zoo:ring:6:clean:1", "--level", "2",
    ]) == 0
    captured = capsys.readouterr()
    assert "OPENQASM 2.0;" in captured.out
    assert "zoo-ring6-clean-s1" in captured.err


def test_execute_on_zoo_device(qasm_file, capsys):
    assert main([
        "execute", qasm_file, "--device", "zoo:star:4",
        "--shots", "100", "--level", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "hellinger distance" in out
