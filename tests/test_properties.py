"""Property-based tests (hypothesis) on core invariants.

These cover the library-wide contracts that unit tests can only spot-check:
unitarity preservation through every compiler stage, metric axioms of the
Hellinger distance, routing legality on arbitrary circuits, feature-vector
well-formedness, and regressor output bounds.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits.random import random_circuit
from repro.compiler import compile_circuit
from repro.compiler.passes.base import PropertySet
from repro.compiler.passes.decompose import Decompose
from repro.compiler.passes.optimization import OptimizationLoop
from repro.compiler.passes.routing import route_circuit
from repro.compiler.passes.synthesis import NativeSynthesis, VirtualRZ
from repro.fom.features import feature_vector
from repro.hardware import make_device
from repro.hardware.coupling import grid_map, line_map, ring_map
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import pearson_r
from repro.simulation.distributions import (
    hellinger_distance,
    normalize,
    total_variation_distance,
)
from repro.simulation.statevector import circuit_unitary, ideal_distribution

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

circuit_params = st.tuples(
    st.integers(min_value=2, max_value=4),   # qubits
    st.integers(min_value=1, max_value=8),   # depth
    st.integers(min_value=0, max_value=10_000),  # seed
)


def dirichlet_dists(num_keys: int):
    return st.lists(
        st.floats(min_value=1e-3, max_value=1.0),
        min_size=num_keys, max_size=num_keys,
    ).map(
        lambda raw: normalize(
            {format(i, "02b"): v for i, v in enumerate(raw)}
        )
    )


# ---------------------------------------------------------------------------
# Circuit algebra
# ---------------------------------------------------------------------------

@_SETTINGS
@given(circuit_params)
def test_inverse_composes_to_identity(params):
    n, depth, seed = params
    qc = random_circuit(n, depth, seed=seed)
    unitary = circuit_unitary(qc)
    inverse = circuit_unitary(qc.inverse())
    assert np.allclose(inverse @ unitary, np.eye(1 << n), atol=1e-8)


@_SETTINGS
@given(circuit_params)
def test_compose_multiplies_unitaries(params):
    n, depth, seed = params
    a = random_circuit(n, depth, seed=seed)
    b = random_circuit(n, depth, seed=seed + 1)
    ua, ub = circuit_unitary(a), circuit_unitary(b)
    combined = a.copy().compose(b)
    assert np.allclose(circuit_unitary(combined), ub @ ua, atol=1e-8)


@_SETTINGS
@given(circuit_params)
def test_simulation_preserves_norm(params):
    n, depth, seed = params
    qc = random_circuit(n, depth, seed=seed, measure=True)
    dist = ideal_distribution(qc)
    assert math.isclose(sum(dist.values()), 1.0, abs_tol=1e-6)
    assert all(v >= 0 for v in dist.values())


# ---------------------------------------------------------------------------
# Compiler invariants
# ---------------------------------------------------------------------------

@_SETTINGS
@given(circuit_params)
def test_full_synthesis_chain_preserves_unitary(params):
    n, depth, seed = params
    qc = random_circuit(n, depth, seed=seed)
    props = PropertySet()
    stage = Decompose().run(qc, props)
    stage = OptimizationLoop().run(stage, props)
    stage = NativeSynthesis().run(stage, props)
    stage = VirtualRZ(keep_final_rz=True).run(stage, props)
    assert np.allclose(
        circuit_unitary(stage), circuit_unitary(qc), atol=1e-7
    )


@_SETTINGS
@given(
    circuit_params,
    st.sampled_from(["line", "ring", "grid"]),
)
def test_routing_always_yields_coupled_gates(params, topology):
    n, depth, seed = params
    coupling = {
        "line": line_map(5), "ring": ring_map(5), "grid": grid_map(2, 3),
    }[topology]
    qc = random_circuit(n, depth, seed=seed, measure=True)
    routed, final = route_circuit(qc, coupling, seed=seed)
    for instruction in routed.instructions:
        if instruction.is_unitary and instruction.num_qubits == 2:
            assert coupling.has_edge(*instruction.qubits)
    # Final mapping is always a permutation of physical qubits.
    assert sorted(final.values()) == list(range(coupling.num_qubits))


@_SETTINGS
@given(circuit_params, st.integers(min_value=0, max_value=3))
def test_compile_preserves_distribution(params, level):
    n, depth, seed = params
    device = make_device("prop", grid_map(2, 3), seed=1)
    qc = random_circuit(n, depth, seed=seed, measure=True)
    reference = ideal_distribution(qc)
    result = compile_circuit(qc, device, optimization_level=level, seed=seed)
    compiled = ideal_distribution(result.circuit)
    for key in set(reference) | set(compiled):
        assert math.isclose(
            reference.get(key, 0.0), compiled.get(key, 0.0), abs_tol=1e-6
        )


# ---------------------------------------------------------------------------
# Hellinger distance axioms
# ---------------------------------------------------------------------------

@_SETTINGS
@given(dirichlet_dists(4), dirichlet_dists(4))
def test_hellinger_metric_axioms(p, q):
    d_pq = hellinger_distance(p, q)
    assert 0.0 <= d_pq <= 1.0
    assert d_pq == pytest.approx(hellinger_distance(q, p))
    assert hellinger_distance(p, p) == pytest.approx(0.0, abs=1e-9)


@_SETTINGS
@given(dirichlet_dists(4), dirichlet_dists(4), dirichlet_dists(4))
def test_hellinger_triangle(p, q, r):
    assert hellinger_distance(p, r) <= (
        hellinger_distance(p, q) + hellinger_distance(q, r) + 1e-9
    )


@_SETTINGS
@given(dirichlet_dists(4), dirichlet_dists(4))
def test_hellinger_tvd_inequality(p, q):
    """h^2 <= tvd <= h * sqrt(2)."""
    h = hellinger_distance(p, q)
    tvd = total_variation_distance(p, q)
    assert h * h <= tvd + 1e-9
    assert tvd <= h * math.sqrt(2.0) + 1e-9


# ---------------------------------------------------------------------------
# Features and ML
# ---------------------------------------------------------------------------

@_SETTINGS
@given(circuit_params)
def test_feature_vector_always_finite(params):
    n, depth, seed = params
    qc = random_circuit(n, depth, seed=seed, measure=True)
    vec = feature_vector(qc)
    assert vec.shape == (30,)
    assert np.all(np.isfinite(vec))
    assert np.all(vec >= 0.0)


@_SETTINGS
@given(st.integers(min_value=0, max_value=1000))
def test_forest_predictions_bounded_by_labels(seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(40, 5))
    y = rng.uniform(size=40)
    forest = RandomForestRegressor(
        n_estimators=5, random_state=seed
    ).fit(X, y)
    probe = rng.uniform(-1, 2, size=(20, 5))
    predictions = forest.predict(probe)
    assert predictions.min() >= y.min() - 1e-12
    assert predictions.max() <= y.max() + 1e-12


@_SETTINGS
@given(
    st.lists(st.floats(-100, 100), min_size=3, max_size=30),
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=-50, max_value=50),
)
def test_pearson_affine_invariance(values, scale, shift):
    x = np.array(values)
    if np.ptp(x) < 1e-6:
        # Degenerate spread: squaring sub-epsilon deviations underflows,
        # which pearson_r legitimately reports as "no correlation".
        return
    y = scale * x + shift
    assert pearson_r(x, y) == pytest.approx(1.0, abs=1e-6)
