"""Contract tests for :mod:`repro.parallel` across both execution modes.

Pins the PR 6 guarantees: order preservation in thread *and* process
pools, the parent-side ``on_result`` callback contract (exceptions
propagate only after the batch drains), fn-error precedence, the
small-batch process degradation, the ``REPRO_WORKERS_MODE`` override,
and the single repo-wide ``max_workers=None`` -> one-per-CPU rule.
"""

import os

import pytest

from repro.parallel import (
    PROCESS_MIN_ITEMS,
    WORKER_MODES,
    WORKERS_MODE_ENV,
    parallel_map,
    resolve_mode,
    resolve_workers,
)

# Module-level so process mode can pickle them by reference.  This module
# only imports repro.parallel, so spawned workers stay cheap to start.


def _square(x):
    return x * x


def _fail_on_even(x):
    if x % 2 == 0:
        raise ValueError(f"bad {x}")
    return x


def _worker_pid(_):
    return os.getpid()


_INIT_VALUE = None


def _remember(value):
    global _INIT_VALUE
    _INIT_VALUE = value


def _recall(_):
    return _INIT_VALUE


@pytest.mark.parametrize("mode", WORKER_MODES)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_order_preserved_across_modes_and_worker_counts(mode, workers):
    items = list(range(10))
    assert parallel_map(
        _square, items, max_workers=workers, mode=mode
    ) == [i * i for i in items]


@pytest.mark.parametrize("mode", WORKER_MODES)
def test_on_result_fires_in_parent_for_every_item(mode):
    items = list(range(8))
    seen = []
    parent = os.getpid()

    def callback(index, result):
        # Appending to a closure list only works because the callback
        # runs in the parent, whatever the pool flavor.
        assert os.getpid() == parent
        seen.append((index, result))

    results = parallel_map(
        _square, items, max_workers=4, mode=mode, on_result=callback
    )
    assert sorted(index for index, _ in seen) == items
    assert dict(seen) == dict(enumerate(results))


@pytest.mark.parametrize("mode", WORKER_MODES)
def test_callback_exception_propagates_after_drain(mode):
    """A raising callback must neither hang the pool nor skip items."""
    items = list(range(8))
    seen = []

    def bad_callback(index, result):
        seen.append(index)
        if len(seen) == 1:
            raise RuntimeError("callback blew up")

    with pytest.raises(RuntimeError, match="callback blew up"):
        parallel_map(
            _square, items, max_workers=4, mode=mode, on_result=bad_callback
        )
    # The batch drained fully: every item completed and fired its callback.
    assert sorted(seen) == items


@pytest.mark.parametrize("mode", WORKER_MODES)
def test_lowest_index_fn_error_wins(mode):
    """With several failing items the lowest input index propagates, and
    fn errors take precedence over callback errors."""

    def callback(index, result):
        raise RuntimeError("callback error should lose")

    with pytest.raises(ValueError, match="bad 2"):
        parallel_map(
            _fail_on_even,
            [1, 3, 2, 5, 4, 7],
            max_workers=4,
            mode=mode,
            on_result=callback,
        )


def test_sequential_path_stops_at_first_failure():
    calls = []

    def fn(x):
        calls.append(x)
        if x == 2:
            raise ValueError(f"bad {x}")
        return x

    with pytest.raises(ValueError, match="bad 2"):
        parallel_map(fn, [1, 2, 3, 4], max_workers=1)
    assert calls == [1, 2]


def test_small_process_batch_degrades_to_in_process_loop():
    items = list(range(PROCESS_MIN_ITEMS - 1))
    pids = parallel_map(_worker_pid, items, max_workers=4, mode="process")
    assert pids == [os.getpid()] * len(items)


def test_process_pool_actually_leaves_the_parent():
    items = list(range(max(PROCESS_MIN_ITEMS, 4)))
    pids = parallel_map(_worker_pid, items, max_workers=2, mode="process")
    assert all(pid != os.getpid() for pid in pids)


def test_initializer_ships_state_to_process_workers():
    items = list(range(max(PROCESS_MIN_ITEMS, 4)))
    results = parallel_map(
        _recall,
        items,
        max_workers=2,
        mode="process",
        initializer=_remember,
        initargs=(42,),
    )
    assert results == [42] * len(items)
    # Parent state untouched: the initializer ran in the workers only.
    assert _INIT_VALUE is None


def test_initializer_runs_in_parent_on_degenerate_path():
    global _INIT_VALUE
    try:
        assert parallel_map(
            _recall, [0], max_workers=4, mode="process",
            initializer=_remember, initargs=(7,),
        ) == [7]
        assert _INIT_VALUE == 7
    finally:
        _INIT_VALUE = None


def test_resolve_mode_precedence(monkeypatch):
    monkeypatch.delenv(WORKERS_MODE_ENV, raising=False)
    assert resolve_mode(None) == "thread"
    assert resolve_mode(None, default="process") == "process"
    assert resolve_mode("thread", default="process") == "thread"
    monkeypatch.setenv(WORKERS_MODE_ENV, "process")
    assert resolve_mode(None) == "process"
    # An explicit argument still beats the environment.
    assert resolve_mode("thread") == "thread"
    monkeypatch.setenv(WORKERS_MODE_ENV, "")
    assert resolve_mode(None) == "thread"
    with pytest.raises(ValueError):
        resolve_mode("fork")
    monkeypatch.setenv(WORKERS_MODE_ENV, "greenlet")
    with pytest.raises(ValueError):
        resolve_mode(None)


def test_parallel_map_rejects_unknown_mode():
    with pytest.raises(ValueError):
        parallel_map(_square, [1, 2, 3], mode="fork")


def test_resolve_workers_none_means_one_per_cpu():
    cpus = os.cpu_count() or 1
    assert resolve_workers(None, 10 ** 6) == cpus
    assert resolve_workers(None, 1) == 1
    assert resolve_workers(3, 10) == 3
    assert resolve_workers(8, 2) == 2
    assert resolve_workers(None, 0) == 1
    with pytest.raises(ValueError):
        resolve_workers(0, 5)
