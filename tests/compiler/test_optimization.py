"""Unit tests for optimization passes."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random import random_circuit
from repro.compiler.passes.base import PropertySet
from repro.compiler.passes.optimization import (
    CancelInversePairs,
    Merge1QRuns,
    OptimizationLoop,
    RemoveIdentities,
)
from repro.simulation.statevector import circuit_unitary

PROPS = PropertySet


def test_remove_identities():
    qc = QuantumCircuit(2)
    qc.i(0).rx(0.0, 1).h(0).rz(0.0, 0)
    out = RemoveIdentities().run(qc, PROPS())
    assert [ins.name for ins in out] == ["h"]


def test_merge_collapses_run_to_single_u():
    qc = QuantumCircuit(1)
    qc.h(0).t(0).s(0).rx(0.3, 0)
    out = Merge1QRuns().run(qc, PROPS())
    assert out.size() == 1
    assert out.instructions[0].name == "u"
    assert np.allclose(
        circuit_unitary(out), circuit_unitary(qc), atol=1e-9
    )


def test_merge_cancels_inverse_run():
    qc = QuantumCircuit(1)
    qc.h(0).h(0)
    out = Merge1QRuns().run(qc, PROPS())
    assert out.size() == 0
    assert np.allclose(circuit_unitary(out), np.eye(2), atol=1e-10)


def test_merge_tracks_global_phase_of_identity_product():
    qc = QuantumCircuit(1)
    qc.z(0).z(0)  # Z^2 = I exactly
    out = Merge1QRuns().run(qc, PROPS())
    assert np.allclose(circuit_unitary(out), circuit_unitary(qc), atol=1e-10)
    qc2 = QuantumCircuit(1)
    qc2.x(0).y(0)  # = iZ: one u gate + phase
    out2 = Merge1QRuns().run(qc2, PROPS())
    assert np.allclose(circuit_unitary(out2), circuit_unitary(qc2), atol=1e-10)


def test_merge_does_not_cross_two_qubit_gates():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).h(0)
    out = Merge1QRuns().run(qc, PROPS())
    # The two Hadamards are separated by the CX; they must not merge.
    assert out.size() == 3
    assert np.allclose(circuit_unitary(out), circuit_unitary(qc), atol=1e-9)


def test_merge_does_not_cross_barrier():
    qc = QuantumCircuit(1)
    qc.h(0)
    qc.barrier()
    qc.h(0)
    out = Merge1QRuns().run(qc, PROPS())
    assert sum(1 for ins in out if ins.name != "barrier") == 2


def test_merge_does_not_cross_measure():
    qc = QuantumCircuit(1, 1)
    qc.h(0)
    qc.measure(0, 0)
    qc.h(0)
    out = Merge1QRuns().run(qc, PROPS())
    names = [ins.name for ins in out.instructions]
    assert names == ["u", "measure", "u"]


def test_cancel_adjacent_cx_pair():
    qc = QuantumCircuit(2)
    qc.cx(0, 1).cx(0, 1)
    out = CancelInversePairs().run(qc, PROPS())
    assert out.size() == 0


def test_cancel_cx_pair_requires_same_orientation():
    qc = QuantumCircuit(2)
    qc.cx(0, 1).cx(1, 0)
    out = CancelInversePairs().run(qc, PROPS())
    assert out.size() == 2


def test_cancel_cz_pair_any_orientation():
    qc = QuantumCircuit(2)
    qc.cz(0, 1).cz(1, 0)
    out = CancelInversePairs().run(qc, PROPS())
    assert out.size() == 0


def test_cancel_through_commuting_diagonal_on_cz():
    qc = QuantumCircuit(2)
    qc.cz(0, 1).rz(0.4, 0).s(1).cz(0, 1)
    out = CancelInversePairs().run(qc, PROPS())
    assert [ins.name for ins in out] == ["rz", "s"]
    assert np.allclose(circuit_unitary(out), circuit_unitary(qc), atol=1e-9)


def test_cancel_through_x_on_cx_target():
    qc = QuantumCircuit(2)
    qc.cx(0, 1).rx(0.3, 1).cx(0, 1)
    out = CancelInversePairs().run(qc, PROPS())
    assert [ins.name for ins in out] == ["rx"]
    assert np.allclose(circuit_unitary(out), circuit_unitary(qc), atol=1e-9)


def test_no_cancel_through_blocking_gate():
    qc = QuantumCircuit(2)
    qc.cx(0, 1).h(1).cx(0, 1)
    out = CancelInversePairs().run(qc, PROPS())
    assert out.size() == 3


def test_no_cancel_through_h_on_control():
    qc = QuantumCircuit(2)
    qc.cx(0, 1).h(0).cx(0, 1)
    out = CancelInversePairs().run(qc, PROPS())
    assert out.size() == 3
    assert np.allclose(circuit_unitary(out), circuit_unitary(qc), atol=1e-9)


def test_cancel_swap_pair():
    qc = QuantumCircuit(2)
    qc.swap(0, 1).swap(1, 0)
    out = CancelInversePairs().run(qc, PROPS())
    assert out.size() == 0


@pytest.mark.parametrize("seed", range(6))
def test_optimization_loop_preserves_unitary(seed):
    qc = random_circuit(4, 12, seed=seed)
    out = OptimizationLoop().run(qc, PROPS())
    assert out.size() <= qc.size()
    assert np.allclose(
        circuit_unitary(out), circuit_unitary(qc), atol=1e-8
    )


def test_optimization_loop_reaches_fixpoint():
    qc = QuantumCircuit(2)
    qc.h(0).h(0).cx(0, 1).cx(0, 1).t(1).tdg(1)
    out = OptimizationLoop().run(qc, PROPS())
    assert out.size() == 0


def test_optimization_preserves_measures():
    qc = QuantumCircuit(2, 2)
    qc.h(0).h(0)
    qc.measure(0, 0)
    out = OptimizationLoop().run(qc, PROPS())
    assert [ins.name for ins in out.instructions] == ["measure"]
