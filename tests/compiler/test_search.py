"""Tests for the predictor-guided compilation search and its leaderboard."""

import json

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import to_qasm
from repro.circuits.random import random_circuit
from repro.compiler import compile_batch, compile_circuit
from repro.compiler.search import (
    DEFAULT_BEAM_WIDTH,
    LeaderboardSession,
    PassConfig,
    compile_search,
    device_family,
    leaderboard_fingerprint,
    leaderboard_name,
    model_fingerprint,
    reset_search_stats,
    search_circuit,
    search_stats,
    stock_configs,
    width_bucket,
)
from repro.evaluation.artifacts import ArtifactStore
from repro.fom.metrics import expected_fidelity
from repro.hardware import make_q20a, make_zoo_device
from repro.ml.forest import RandomForestRegressor


def tiny_estimator(seed: int = 0, n_estimators: int = 5):
    """A small fitted forest: fast, picklable, deterministic."""
    rng = np.random.default_rng(seed)
    forest = RandomForestRegressor(
        n_estimators=n_estimators, random_state=seed, max_features="sqrt"
    )
    forest.fit(rng.uniform(size=(40, 30)), rng.uniform(size=40))
    return forest


@pytest.fixture(scope="module")
def estimator():
    return tiny_estimator()


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def small_suite(count: int = 4):
    circuits = []
    for index in range(count):
        qc = random_circuit(3 + index % 2, 6, seed=index, measure=True)
        qc.name = f"rand_{index}"
        circuits.append(qc)
    return circuits


# ----------------------------------------------------------------------
# PassConfig and the stock sweep.


def test_pass_config_round_trip():
    config = PassConfig(
        layout="line", layout_seed_offset=5, routing_seed_offset=7,
        lookahead_size=10, opt_iterations=4,
    )
    assert PassConfig.from_dict(config.to_dict()) == config
    assert config.key() == ("line", 5, 7, 10, 4)


def test_pass_config_validation():
    with pytest.raises(ValueError, match="layout"):
        PassConfig(layout="bogus")
    with pytest.raises(ValueError, match="lookahead_size"):
        PassConfig(lookahead_size=-1)
    with pytest.raises(ValueError, match="opt_iterations"):
        PassConfig(opt_iterations=0)


def test_stock_configs_match_level3_trials():
    configs = stock_configs(4)
    assert len(configs) == 4
    assert [c.layout for c in configs] == ["greedy", "trivial", "line", "greedy"]
    assert [c.layout_seed_offset for c in configs] == [0, 1, 2, 3]
    assert [c.routing_seed_offset for c in configs] == [0, 1, 2, 3]


def test_neighbors_are_valid_and_fresh():
    config = PassConfig()
    neighbors = config.neighbors(4)
    assert neighbors
    assert all(isinstance(n, PassConfig) for n in neighbors)
    assert all(n.key() != config.key() for n in neighbors)
    # Ladder moves stay on the ladder.
    for n in neighbors:
        if n.lookahead_size != config.lookahead_size:
            assert n.lookahead_size in (0, 10, 20, 40)


# ----------------------------------------------------------------------
# Leaderboard addressing.


def test_device_family_and_width_bucket(device):
    assert device_family(device) == "q20-a"
    zoo = make_zoo_device("ring", num_qubits=6, tier="noisy", seed=1)
    assert device_family(zoo) == "zoo-ring-noisy"
    assert width_bucket(1) == "w01-04"
    assert width_bucket(4) == "w01-04"
    assert width_bucket(5) == "w05-08"
    assert width_bucket(20) == "w17-20"
    with pytest.raises(ValueError):
        width_bucket(0)
    assert leaderboard_name(device, 6) == "q20-a-w05-08"


def test_model_fingerprint_tracks_content(estimator):
    fp = model_fingerprint(estimator)
    assert fp == model_fingerprint(tiny_estimator())   # refit, same content
    assert fp != model_fingerprint(tiny_estimator(seed=1))
    assert fp != model_fingerprint(tiny_estimator(n_estimators=6))

    class Opaque:
        def predict(self, X):
            return np.zeros(len(X))

    opaque_fp = model_fingerprint(Opaque())
    assert opaque_fp and opaque_fp != fp
    assert leaderboard_fingerprint(fp, 4, 2, 4) != leaderboard_fingerprint(
        fp, 3, 2, 4
    )


# ----------------------------------------------------------------------
# Single-circuit search semantics.


def test_generations_zero_reproduces_stock_level3(device, estimator):
    for index, circuit in enumerate(small_suite(3)):
        stock = compile_circuit(
            circuit, device, optimization_level=3, seed=17 + index
        )
        searched = search_circuit(
            circuit, device, estimator, seed=17 + index,
            beam_width=DEFAULT_BEAM_WIDTH, generations=0,
        )
        assert to_qasm(searched.circuit) == to_qasm(stock.circuit)


def test_search_parity_or_win(device, estimator):
    for index, circuit in enumerate(small_suite(4)):
        stock = compile_circuit(
            circuit, device, optimization_level=3, seed=index
        )
        searched = search_circuit(
            circuit, device, estimator, seed=index,
            beam_width=3, generations=1,
        )
        stock_fid = expected_fidelity(
            stock.circuit, device, calibration=device.reported_calibration
        )
        search_fid = searched.properties["search"]["expected_fidelity"]
        assert search_fid >= stock_fid - 1e-12
        assert searched.properties["search"]["source"] == "search"
        assert searched.circuit.metadata["optimization_level"] == "search"


def test_search_validates_inputs(device, estimator):
    circuit = QuantumCircuit(2).h(0).cx(0, 1)
    with pytest.raises(ValueError, match="beam_width"):
        search_circuit(circuit, device, estimator, beam_width=0)
    with pytest.raises(ValueError, match="generations"):
        search_circuit(circuit, device, estimator, generations=-1)
    wide = QuantumCircuit(21)
    with pytest.raises(ValueError, match="qubits"):
        search_circuit(wide, device, estimator)


def test_search_stats_counters(device, estimator):
    reset_search_stats()
    search_circuit(
        small_suite(1)[0], device, estimator, beam_width=2, generations=1
    )
    stats = search_stats()
    assert stats["searches"] == 1
    assert stats["predictor_calls"] >= 1
    assert stats["configs_evaluated"] >= 4
    assert stats["exact_rescores"] >= 4
    reset_search_stats()
    assert search_stats()["searches"] == 0


# ----------------------------------------------------------------------
# Leaderboard artifacts: round-trip, silent miss, regeneration.


def search_kwargs():
    return dict(beam_width=2, generations=1, workers_mode="thread",
                max_workers=2)


def test_leaderboard_round_trip(tmp_path, device, estimator):
    store = ArtifactStore(tmp_path)
    circuits = small_suite(3)
    results = compile_search(
        circuits, device, estimator, store=store, **search_kwargs()
    )
    refs = store.find("leaderboard")
    assert refs, "search recorded no leaderboard entries"
    for ref in refs:
        entry = store.get("leaderboard", ref.name, ref.fingerprint)
        assert entry is not None
        assert PassConfig.from_dict(entry["config"])  # parses
        assert entry["estimator_fingerprint"] == model_fingerprint(estimator)
        payload = json.loads(ref.path.read_text())
        assert payload["format"] == "repro-leaderboard"
        assert payload["fingerprint"] == ref.fingerprint
    # Wrong fingerprint is a silent miss.
    assert store.get("leaderboard", refs[0].name, "0" * 16) is None
    # Warm rerun: all incumbents, no new searches.
    reset_search_stats()
    warm = compile_search(
        circuits, device, estimator, store=store, **search_kwargs()
    )
    stats = search_stats()
    assert stats["warm_starts"] == len(circuits)
    assert stats["searches"] == 0
    assert [r.properties["search"]["source"] for r in warm] == (
        ["leaderboard"] * len(circuits)
    )


def test_leaderboard_corrupt_and_foreign_are_misses(
    tmp_path, device, estimator
):
    store = ArtifactStore(tmp_path)
    circuits = small_suite(3)
    compile_search(circuits, device, estimator, store=store, **search_kwargs())
    ref = store.find("leaderboard")[0]
    original = ref.path.read_bytes()

    ref.path.write_text("{ truncated")
    assert store.get("leaderboard", ref.name, ref.fingerprint) is None
    ref.path.write_text(json.dumps({"format": "something-else"}))
    assert store.get("leaderboard", ref.name, ref.fingerprint) is None

    # A fresh search rides over the bad entry and regenerates it
    # byte-identically (canonical JSON, no timestamps).
    reset_search_stats()
    compile_search(circuits, device, estimator, store=store, **search_kwargs())
    assert search_stats()["searches"] > 0
    assert ref.path.read_bytes() == original


def test_leaderboard_session_snapshot_and_first_write_wins(
    tmp_path, estimator
):
    store = ArtifactStore(tmp_path)
    session = LeaderboardSession.for_search(store, estimator)
    assert session.incumbent("q20-a-w01-04") is None
    entry = {
        "config": PassConfig().to_dict(),
        "estimator_fingerprint": session.estimator_fingerprint,
    }
    session.record("q20-a-w01-04", entry)
    later = dict(entry, config=PassConfig(layout="line").to_dict())
    session.record("q20-a-w01-04", later)          # second write ignored
    # Nothing on disk until flush.
    assert not store.find("leaderboard")
    assert session.flush() == 1
    stored = store.get("leaderboard", "q20-a-w01-04", session.fingerprint)
    assert stored["config"] == PassConfig().to_dict()
    # A session created before a store mutation keeps serving its snapshot.
    fresh = LeaderboardSession.for_search(store, estimator)
    assert fresh.incumbent("q20-a-w01-04") == PassConfig()


def test_warm_start_and_record_switches(tmp_path, device, estimator):
    store = ArtifactStore(tmp_path)
    circuits = small_suite(3)
    compile_search(
        circuits, device, estimator, store=store, record=False,
        **search_kwargs(),
    )
    assert not store.find("leaderboard")
    compile_search(circuits, device, estimator, store=store, **search_kwargs())
    assert store.find("leaderboard")
    reset_search_stats()
    compile_search(
        circuits, device, estimator, store=store, warm_start=False,
        **search_kwargs(),
    )
    assert search_stats()["warm_starts"] == 0


# ----------------------------------------------------------------------
# Batch determinism: workers, pool mode, store bytes.


def test_compile_search_deterministic_across_pools(
    tmp_path, device, estimator
):
    circuits = small_suite(4)
    outputs = {}
    store_bytes = {}
    for mode in ("thread", "process"):
        for workers in (1, 2, 4):
            root = tmp_path / f"{mode}-{workers}"
            results = compile_search(
                circuits, device, estimator,
                beam_width=2, generations=1,
                store=ArtifactStore(root),
                max_workers=workers, workers_mode=mode,
            )
            outputs[(mode, workers)] = [
                to_qasm(result.circuit) for result in results
            ]
            store_bytes[(mode, workers)] = {
                path.name: path.read_bytes()
                for path in sorted(root.iterdir())
            }
    reference_out = outputs[("thread", 1)]
    reference_store = store_bytes[("thread", 1)]
    assert reference_store, "no leaderboard files written"
    for key, value in outputs.items():
        assert value == reference_out, f"{key} diverged from thread/1"
    for key, value in store_bytes.items():
        assert value == reference_store, f"{key} store diverged from thread/1"


def test_compile_search_process_pool_aggregates_stats(device, estimator):
    reset_search_stats()
    circuits = small_suite(4)
    compile_search(
        circuits, device, estimator, beam_width=2, generations=1,
        max_workers=2, workers_mode="process",
    )
    stats = search_stats()
    assert stats["searches"] == len(circuits)
    assert stats["configs_evaluated"] > 0


def test_compile_search_seeds_must_match(device, estimator):
    with pytest.raises(ValueError, match="seeds"):
        compile_search(
            small_suite(2), device, estimator, seeds=[0], **search_kwargs()
        )


# ----------------------------------------------------------------------
# compile_circuit / compile_batch integration.


def test_compile_circuit_search_level(device, estimator):
    circuit = small_suite(1)[0]
    result = compile_circuit(
        circuit, device, optimization_level="search", estimator=estimator,
        search_opts={"beam_width": 2, "generations": 1},
    )
    assert result.optimization_level == "search"
    assert "search" in result.properties


def test_compile_circuit_search_requires_estimator(device):
    with pytest.raises(ValueError, match="estimator"):
        compile_circuit(
            small_suite(1)[0], device, optimization_level="search"
        )


def test_compile_circuit_rejects_bad_levels(device):
    circuit = small_suite(1)[0]
    with pytest.raises(ValueError, match="optimization_level"):
        compile_circuit(circuit, device, optimization_level=7)
    with pytest.raises(ValueError, match="optimization_level"):
        compile_circuit(circuit, device, optimization_level="bogus")


def test_compile_batch_search_delegates(device, estimator):
    circuits = small_suite(3)
    batched = compile_batch(
        circuits, device, optimization_level="search", estimator=estimator,
        search_opts={"beam_width": 2, "generations": 1},
        workers_mode="thread", max_workers=2,
    )
    direct = compile_search(
        circuits, device, estimator, beam_width=2, generations=1,
        workers_mode="thread", max_workers=2,
    )
    assert [to_qasm(b.circuit) for b in batched] == [
        to_qasm(d.circuit) for d in direct
    ]
