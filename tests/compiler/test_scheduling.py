"""Unit tests for ASAP scheduling and idle-time accounting."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.passes.base import PropertySet
from repro.compiler.passes.scheduling import ASAPSchedule, schedule_asap
from repro.hardware.calibration import GateDurations

DURATIONS = GateDurations(one_qubit=10.0, two_qubit=30.0, readout=100.0)


def test_sequential_gates_stack():
    qc = QuantumCircuit(1)
    qc.prx(0.1, 0.0, 0)
    qc.prx(0.2, 0.0, 0)
    schedule = schedule_asap(qc, DURATIONS)
    assert schedule.timed[0].start == 0.0
    assert schedule.timed[0].end == 10.0
    assert schedule.timed[1].start == 10.0
    assert schedule.total_duration == 20.0


def test_parallel_gates_overlap():
    qc = QuantumCircuit(2)
    qc.prx(0.1, 0.0, 0)
    qc.prx(0.1, 0.0, 1)
    schedule = schedule_asap(qc, DURATIONS)
    assert schedule.timed[0].start == 0.0
    assert schedule.timed[1].start == 0.0
    assert schedule.total_duration == 10.0


def test_two_qubit_gate_waits_for_both():
    qc = QuantumCircuit(2)
    qc.prx(0.1, 0.0, 0)
    qc.cz(0, 1)
    schedule = schedule_asap(qc, DURATIONS)
    cz = schedule.timed[1]
    assert cz.start == 10.0
    assert cz.end == 40.0


def test_barrier_aligns_qubits():
    qc = QuantumCircuit(2)
    qc.prx(0.1, 0.0, 0)
    qc.barrier()
    qc.prx(0.1, 0.0, 1)
    schedule = schedule_asap(qc, DURATIONS)
    # After the barrier, qubit 1's gate starts at qubit 0's finish time.
    assert schedule.timed[-1].start == 10.0


def test_idle_time_of_waiting_qubit():
    qc = QuantumCircuit(2)
    qc.prx(0.1, 0.0, 0)
    qc.prx(0.1, 0.0, 0)
    qc.cz(0, 1)
    schedule = schedule_asap(qc, DURATIONS)
    # Qubit 1 waits 20ns for qubit 0's two gates, then is busy 30ns.
    assert schedule.idle_time(1) == pytest.approx(20.0)
    assert schedule.idle_time(0) == pytest.approx(0.0)


def test_idle_time_untouched_qubit_is_zero():
    qc = QuantumCircuit(3)
    qc.prx(0.1, 0.0, 0)
    schedule = schedule_asap(qc, DURATIONS)
    assert schedule.idle_time(2) == 0.0


def test_measure_duration():
    qc = QuantumCircuit(1, 1)
    qc.measure(0, 0)
    schedule = schedule_asap(qc, DURATIONS)
    assert schedule.total_duration == 100.0


def test_qubit_busy_accounting():
    qc = QuantumCircuit(2)
    qc.cz(0, 1)
    qc.prx(0.2, 0.0, 0)
    schedule = schedule_asap(qc, DURATIONS)
    assert schedule.qubit_busy[0] == pytest.approx(40.0)
    assert schedule.qubit_busy[1] == pytest.approx(30.0)


def test_parallel_groups_by_time_overlap():
    qc = QuantumCircuit(3)
    qc.cz(0, 1)        # 0-30
    qc.prx(0.1, 0.0, 2)  # 0-10, overlaps cz
    qc.prx(0.1, 0.0, 0)  # 30-40
    schedule = schedule_asap(qc, DURATIONS)
    groups = schedule.parallel_groups()
    assert len(groups) == 2
    assert len(groups[0]) == 2


def test_pass_stores_schedule():
    qc = QuantumCircuit(1)
    qc.prx(0.1, 0.0, 0)
    properties = PropertySet()
    ASAPSchedule(DURATIONS).run(qc, properties)
    assert "schedule" in properties
    assert properties["schedule"].total_duration == 10.0
