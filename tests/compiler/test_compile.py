"""Integration tests: the full compilation pipeline at every level."""

import numpy as np
import pytest

from repro.bench.algorithms import ALGORITHMS
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random import random_circuit
from repro.compiler import compile_circuit
from repro.hardware import make_device, make_q20a
from repro.hardware.coupling import grid_map, line_map
from repro.simulation.statevector import ideal_distribution


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def _distributions_match(a, b, tol=1e-7):
    for key in set(a) | set(b):
        if abs(a.get(key, 0.0) - b.get(key, 0.0)) > tol:
            return False
    return True


@pytest.mark.parametrize("level", [0, 1, 2, 3])
def test_compiled_distribution_matches_original(level, device):
    qc = random_circuit(5, 8, seed=11, measure=True)
    reference = ideal_distribution(qc)
    result = compile_circuit(qc, device, optimization_level=level, seed=5)
    compiled_dist = ideal_distribution(result.circuit)
    assert _distributions_match(reference, compiled_dist)


@pytest.mark.parametrize("level", [0, 1, 2, 3])
def test_compiled_uses_only_native_gates(level, device):
    qc = random_circuit(4, 6, seed=3, measure=True)
    result = compile_circuit(qc, device, optimization_level=level, seed=5)
    device.validate_circuit(result.circuit)  # native + adjacency check


@pytest.mark.parametrize(
    "family", ["ghz", "wstate", "qft", "dj", "bv", "qaoa", "vqe", "ae"]
)
def test_benchmark_families_compile_and_match(family, device):
    generator, minimum, _ = ALGORITHMS[family]
    qc = generator(max(minimum, 4))
    reference = ideal_distribution(qc)
    result = compile_circuit(qc, device, optimization_level=3, seed=2)
    compiled_dist = ideal_distribution(result.circuit)
    assert _distributions_match(reference, compiled_dist)


def test_higher_levels_do_not_increase_two_qubit_count(device):
    qc = random_circuit(6, 12, seed=7, measure=True)
    counts = {}
    for level in range(4):
        result = compile_circuit(qc, device, optimization_level=level, seed=5)
        counts[level] = result.circuit.num_nonlocal_gates()
    assert counts[2] <= counts[0]
    assert counts[3] <= counts[2] * 1.05 + 1  # level 3 picks by fidelity


def test_layouts_are_permutations(device):
    qc = random_circuit(5, 6, seed=1, measure=True)
    result = compile_circuit(qc, device, optimization_level=3, seed=5)
    assert sorted(result.initial_layout.keys()) == list(range(5))
    assert len(set(result.initial_layout.values())) == 5
    assert sorted(result.final_layout.keys()) == list(range(5))
    assert len(set(result.final_layout.values())) == 5


def test_measures_are_terminal_and_complete(device):
    qc = random_circuit(4, 5, seed=9, measure=True)
    result = compile_circuit(qc, device, optimization_level=2, seed=5)
    measures = [
        i for i, ins in enumerate(result.circuit.instructions)
        if ins.name == "measure"
    ]
    assert len(measures) == 4
    # All measures come after all gates.
    last_gate = max(
        (i for i, ins in enumerate(result.circuit.instructions)
         if ins.name != "measure"),
        default=-1,
    )
    assert all(m > last_gate for m in measures)


def test_keep_final_rz_gives_exact_unitary_equivalence(device):
    from repro.simulation.statevector import circuit_unitary

    qc = random_circuit(3, 6, seed=13)
    result = compile_circuit(
        qc, device, optimization_level=1, seed=5, keep_final_rz=True
    )
    # Project the compiled circuit back onto the initial layout wires.
    layout = result.initial_layout
    final = result.final_layout
    # Level 1 on a small circuit: if no swaps were inserted, layouts agree
    # and we can compare unitaries on the occupied block directly.
    if layout == final and sorted(layout.values()) == list(range(3)):
        inverse_map = {phys: prog for prog, phys in layout.items()}
        mapped = result.circuit.remap_qubits(
            {p: inverse_map.get(p, p) for p in range(device.num_qubits)},
            num_qubits=device.num_qubits,
        )
        small = QuantumCircuit(3, global_phase=mapped.global_phase)
        for ins in mapped.instructions:
            if all(q < 3 for q in ins.qubits):
                small.append_instruction(ins)
        assert np.allclose(
            circuit_unitary(small), circuit_unitary(qc), atol=1e-8
        )


def test_rejects_too_wide_circuit():
    device = make_device("tiny", line_map(3), seed=0)
    qc = QuantumCircuit(5)
    with pytest.raises(ValueError, match="qubits"):
        compile_circuit(qc, device)


def test_rejects_invalid_level(device):
    qc = QuantumCircuit(2)
    with pytest.raises(ValueError, match="optimization_level"):
        compile_circuit(qc, device, optimization_level=7)


def test_rejects_mid_circuit_measurement(device):
    qc = QuantumCircuit(2, 2)
    qc.measure(0, 0)
    qc.h(0)
    with pytest.raises(ValueError, match="mid-circuit"):
        compile_circuit(qc, device)


def test_rejects_double_measurement(device):
    qc = QuantumCircuit(2, 2)
    qc.measure(0, 0)
    qc.measure(0, 1)
    with pytest.raises(ValueError, match="measured twice"):
        compile_circuit(qc, device)


def test_compilation_deterministic_given_seed(device):
    qc = random_circuit(5, 8, seed=21, measure=True)
    a = compile_circuit(qc, device, optimization_level=3, seed=4)
    b = compile_circuit(qc, device, optimization_level=3, seed=4)
    assert a.circuit.instructions == b.circuit.instructions


def test_result_schedule_lazy(device):
    qc = random_circuit(3, 4, seed=2, measure=True)
    result = compile_circuit(qc, device, optimization_level=1, seed=5)
    schedule = result.schedule
    assert schedule.total_duration > 0
    assert result.schedule is schedule  # cached


def test_metadata_records_level(device):
    qc = random_circuit(3, 4, seed=2, measure=True)
    result = compile_circuit(qc, device, optimization_level=2, seed=5)
    assert result.circuit.metadata["optimization_level"] == 2


def test_compile_on_small_grid_device():
    device = make_device("grid9", grid_map(3, 3), seed=1)
    qc = random_circuit(9, 10, seed=5, measure=True)
    reference = ideal_distribution(qc)
    result = compile_circuit(qc, device, optimization_level=2, seed=3)
    assert _distributions_match(reference, ideal_distribution(result.circuit))
