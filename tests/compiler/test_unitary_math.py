"""Unit tests for single-qubit unitary decomposition math."""

import math

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.circuits.gates import gate_matrix, ry_matrix, rz_matrix
from repro.compiler.unitary_math import (
    is_identity_angle,
    matrices_equal_up_to_phase,
    normalize_angle,
    u_params,
    zyz_decompose,
)


@pytest.mark.parametrize("seed", range(20))
def test_zyz_reconstructs_random_unitaries(seed):
    unitary = unitary_group.rvs(2, random_state=seed)
    alpha, phi, theta, lam = zyz_decompose(unitary)
    reconstructed = (
        np.exp(1j * alpha) * rz_matrix(phi) @ ry_matrix(theta) @ rz_matrix(lam)
    )
    assert np.allclose(reconstructed, unitary, atol=1e-8)


@pytest.mark.parametrize(
    "name", ["id", "x", "y", "z", "h", "s", "t", "sx"]
)
def test_zyz_on_named_gates(name):
    matrix = gate_matrix(name)
    alpha, phi, theta, lam = zyz_decompose(matrix)
    reconstructed = (
        np.exp(1j * alpha) * rz_matrix(phi) @ ry_matrix(theta) @ rz_matrix(lam)
    )
    assert np.allclose(reconstructed, matrix, atol=1e-10)


def test_zyz_diagonal_case():
    matrix = rz_matrix(0.7)
    alpha, phi, theta, lam = zyz_decompose(matrix)
    assert theta == pytest.approx(0.0, abs=1e-9)


def test_zyz_antidiagonal_case():
    matrix = gate_matrix("x")
    alpha, phi, theta, lam = zyz_decompose(matrix)
    assert theta == pytest.approx(math.pi, abs=1e-9)


def test_zyz_rejects_non_unitary():
    with pytest.raises(ValueError, match="unitary"):
        zyz_decompose(np.array([[1, 0], [0, 2]], dtype=complex))
    with pytest.raises(ValueError, match="2x2"):
        zyz_decompose(np.eye(4))


@pytest.mark.parametrize("seed", range(10))
def test_u_params_reconstruction(seed):
    unitary = unitary_group.rvs(2, random_state=100 + seed)
    theta, phi, lam, phase = u_params(unitary)
    reconstructed = np.exp(1j * phase) * gate_matrix("u", (theta, phi, lam))
    assert np.allclose(reconstructed, unitary, atol=1e-8)


def test_normalize_angle_range():
    for angle in (-10.0, -math.pi, 0.0, 1.0, math.pi, 7.5, 100.0):
        wrapped = normalize_angle(angle)
        assert -math.pi < wrapped <= math.pi
        # Same angle modulo 2*pi.
        assert math.isclose(
            math.cos(wrapped), math.cos(angle), abs_tol=1e-12
        )
        assert math.isclose(
            math.sin(wrapped), math.sin(angle), abs_tol=1e-12
        )


def test_is_identity_angle():
    assert is_identity_angle(0.0)
    assert is_identity_angle(2 * math.pi)
    assert is_identity_angle(-4 * math.pi)
    assert not is_identity_angle(0.1)
    assert not is_identity_angle(math.pi)


def test_matrices_equal_up_to_phase():
    a = gate_matrix("h")
    assert matrices_equal_up_to_phase(a, a)
    assert matrices_equal_up_to_phase(1j * a, a)
    assert matrices_equal_up_to_phase(np.exp(0.3j) * a, a)
    assert not matrices_equal_up_to_phase(a, gate_matrix("x"))
    assert not matrices_equal_up_to_phase(2.0 * a, a)
    assert not matrices_equal_up_to_phase(np.eye(2), np.eye(4))
