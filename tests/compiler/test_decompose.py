"""Unit tests for gate decomposition rules."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES, gate_matrix
from repro.circuits.random import random_circuit
from repro.compiler.passes.base import PropertySet
from repro.compiler.passes.decompose import (
    DECOMPOSABLE_GATES,
    Decompose,
    decompose_circuit,
)
from repro.compiler.unitary_math import matrices_equal_up_to_phase
from repro.simulation.statevector import circuit_unitary

_BASIS = {"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
          "rx", "ry", "rz", "p", "u", "prx", "cx", "cz", "measure", "barrier"}


@pytest.mark.parametrize("name", DECOMPOSABLE_GATES)
def test_decomposition_preserves_unitary(name):
    rng = np.random.default_rng(abs(hash(name)) % (2**31))
    spec = GATES[name]
    params = tuple(rng.uniform(0.1, 6.1) for _ in range(spec.num_params))
    qc = QuantumCircuit(spec.num_qubits)
    qc.append(name, tuple(range(spec.num_qubits)), params)
    decomposed = decompose_circuit(qc)
    assert matrices_equal_up_to_phase(
        circuit_unitary(decomposed), gate_matrix(name, params)
    )


@pytest.mark.parametrize("name", DECOMPOSABLE_GATES)
def test_decomposition_emits_only_basis_gates(name):
    spec = GATES[name]
    params = tuple(0.5 for _ in range(spec.num_params))
    qc = QuantumCircuit(spec.num_qubits)
    qc.append(name, tuple(range(spec.num_qubits)), params)
    decomposed = decompose_circuit(qc)
    assert all(ins.name in _BASIS for ins in decomposed.instructions)


def test_decomposition_on_permuted_qubits():
    qc = QuantumCircuit(3)
    qc.ccx(2, 0, 1)
    decomposed = decompose_circuit(qc)
    assert matrices_equal_up_to_phase(
        circuit_unitary(decomposed), circuit_unitary(qc)
    )


def test_basis_gates_pass_through():
    qc = QuantumCircuit(2, 2)
    qc.h(0).cx(0, 1).rz(0.3, 1).measure(0, 0)
    decomposed = decompose_circuit(qc)
    assert [ins.name for ins in decomposed] == ["h", "cx", "rz", "measure"]


def test_barrier_preserved():
    qc = QuantumCircuit(2)
    qc.swap(0, 1)
    qc.barrier()
    decomposed = decompose_circuit(qc)
    assert any(ins.name == "barrier" for ins in decomposed.instructions)


@pytest.mark.parametrize("seed", range(4))
def test_random_circuit_decomposition_equivalence(seed):
    qc = random_circuit(4, 10, seed=seed)
    decomposed = Decompose().run(qc, PropertySet())
    assert np.allclose(
        circuit_unitary(decomposed), circuit_unitary(qc), atol=1e-8
    )


def test_swap_decomposes_to_three_cx():
    qc = QuantumCircuit(2)
    qc.swap(0, 1)
    decomposed = decompose_circuit(qc)
    assert [ins.name for ins in decomposed] == ["cx", "cx", "cx"]


def test_ccx_uses_six_cx():
    qc = QuantumCircuit(3)
    qc.ccx(0, 1, 2)
    decomposed = decompose_circuit(qc)
    assert decomposed.count_ops()["cx"] == 6
