"""Unit tests for SABRE and shortest-path routing."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random import random_circuit
from repro.compiler.passes.base import PropertySet
from repro.compiler.passes.routing import PathRouting, SabreRouting, route_circuit
from repro.hardware.coupling import grid_map, line_map, ring_map
from repro.simulation.statevector import ideal_distribution


def _assert_coupling_respected(circuit, coupling):
    for instruction in circuit.instructions:
        if instruction.is_unitary and instruction.num_qubits == 2:
            assert coupling.has_edge(*instruction.qubits), instruction


@pytest.mark.parametrize("seed", range(5))
def test_sabre_respects_coupling(seed):
    coupling = line_map(6)
    qc = random_circuit(6, 10, seed=seed)
    routed, _ = route_circuit(qc, coupling, seed=seed)
    _assert_coupling_respected(routed, coupling)


@pytest.mark.parametrize("seed", range(3))
def test_sabre_preserves_distribution(seed):
    """Routing + final mapping must leave measured distribution unchanged."""
    coupling = line_map(5)
    qc = random_circuit(5, 8, seed=seed, measure=False)
    qc.measure_all()
    reference = ideal_distribution(qc)
    routed, _ = route_circuit(qc, coupling, seed=seed)
    _assert_coupling_respected(routed, coupling)
    routed_dist = ideal_distribution(routed)
    for key in set(reference) | set(routed_dist):
        assert reference.get(key, 0.0) == pytest.approx(
            routed_dist.get(key, 0.0), abs=1e-9
        )


def test_final_mapping_tracks_swaps():
    coupling = line_map(3)
    qc = QuantumCircuit(3)
    qc.cx(0, 2)  # non-adjacent: needs one swap
    routed, final = route_circuit(qc, coupling, seed=0)
    assert routed.metadata["routing_swaps"] >= 1
    # Exactly one cx remains, on an edge.
    _assert_coupling_respected(routed, coupling)
    # The mapping is a permutation.
    assert sorted(final.values()) == [0, 1, 2]


def test_adjacent_gates_need_no_swaps():
    coupling = line_map(4)
    qc = QuantumCircuit(4)
    qc.cx(0, 1).cx(1, 2).cx(2, 3)
    routed, final = route_circuit(qc, coupling, seed=0)
    assert routed.metadata["routing_swaps"] == 0
    assert final == {q: q for q in range(4)}


def test_swap_gate_cx_mode():
    coupling = line_map(3)
    qc = QuantumCircuit(3)
    qc.cx(0, 2)
    routed, _ = route_circuit(qc, coupling, seed=0, swap_gate="cx")
    assert all(ins.name in ("cx",) for ins in routed.instructions)


def test_lookahead_no_worse_on_structured_circuit():
    coupling = grid_map(3, 3)
    qc = random_circuit(9, 20, seed=4, two_qubit_prob=0.7)
    with_la, _ = route_circuit(qc, coupling, seed=1, lookahead=True)
    without_la, _ = route_circuit(qc, coupling, seed=1, lookahead=False)
    # Not a strict guarantee, but with this seed lookahead must not be
    # dramatically worse; tolerate 30% slack.
    assert (
        with_la.metadata["routing_swaps"]
        <= without_la.metadata["routing_swaps"] * 1.3 + 2
    )


def test_path_routing_respects_coupling():
    coupling = ring_map(6)
    qc = random_circuit(6, 10, seed=2)
    pass_ = PathRouting(coupling)
    routed, final = pass_.route(qc)
    _assert_coupling_respected(routed, coupling)
    assert sorted(final.values()) == list(range(6))


def test_path_routing_preserves_distribution():
    coupling = line_map(4)
    qc = random_circuit(4, 6, seed=3, measure=True)
    reference = ideal_distribution(qc)
    routed, _ = PathRouting(coupling).route(qc)
    routed_dist = ideal_distribution(routed)
    for key in set(reference) | set(routed_dist):
        assert reference.get(key, 0.0) == pytest.approx(
            routed_dist.get(key, 0.0), abs=1e-9
        )


def test_sabre_pass_composes_final_layout():
    coupling = line_map(4)
    qc = QuantumCircuit(3)
    qc.cx(0, 2)
    properties = PropertySet()
    properties["initial_layout"] = {0: 1, 1: 2, 2: 3}
    widened = qc.remap_qubits({0: 1, 1: 2, 2: 3}, num_qubits=4)
    pass_ = SabreRouting(coupling, seed=0)
    pass_.run(widened, properties)
    final = properties["final_layout"]
    assert set(final.keys()) == {0, 1, 2}
    assert len(set(final.values())) == 3


def test_measure_follows_routed_qubit():
    coupling = line_map(3)
    qc = QuantumCircuit(3, 3)
    qc.x(0)
    qc.cx(0, 2)
    qc.measure(0, 0)
    qc.measure(2, 2)
    routed, final = route_circuit(qc, coupling, seed=0)
    dist = ideal_distribution(routed)
    # x(0); cx(0,2): qubit0=1, qubit2=1 -> clbits 0 and 2 set -> '101'.
    assert dist == {"101": pytest.approx(1.0)}


def test_too_wide_circuit_rejected():
    with pytest.raises(ValueError, match="wider"):
        route_circuit(QuantumCircuit(5), line_map(3))
