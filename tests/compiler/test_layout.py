"""Unit tests for initial layout passes."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.passes.base import PropertySet
from repro.compiler.passes.layout import (
    GreedySubgraphLayout,
    LineLayout,
    TrivialLayout,
    apply_layout,
)
from repro.hardware.coupling import grid_map, line_map


def test_trivial_layout_identity():
    coupling = grid_map(2, 3)
    qc = QuantumCircuit(4)
    qc.cx(0, 3)
    properties = PropertySet()
    widened = TrivialLayout(coupling).run(qc, properties)
    assert properties["initial_layout"] == {0: 0, 1: 1, 2: 2, 3: 3}
    assert widened.num_qubits == 6
    assert widened.instructions[0].qubits == (0, 3)


def test_apply_layout_injective_check():
    qc = QuantumCircuit(2)
    with pytest.raises(ValueError, match="injective"):
        apply_layout(qc, {0: 1, 1: 1}, 4)


def test_apply_layout_missing_qubit():
    qc = QuantumCircuit(2)
    with pytest.raises(ValueError, match="misses"):
        apply_layout(qc, {0: 1}, 4)


def test_greedy_layout_places_interacting_pairs_close():
    coupling = grid_map(4, 5)
    qc = QuantumCircuit(4)
    # Heavy 0-1 interaction, light others.
    for _ in range(10):
        qc.cx(0, 1)
    qc.cx(2, 3)
    layout = GreedySubgraphLayout(coupling, seed=1).select_layout(qc)
    dist = coupling.distance_matrix()
    assert dist[layout[0], layout[1]] == 1


def test_greedy_layout_is_injective_and_complete():
    coupling = grid_map(4, 5)
    qc = QuantumCircuit(12)
    for i in range(11):
        qc.cx(i, i + 1)
    layout = GreedySubgraphLayout(coupling, seed=0).select_layout(qc)
    assert len(layout) == 12
    assert len(set(layout.values())) == 12
    assert all(0 <= phys < 20 for phys in layout.values())


def test_greedy_layout_deterministic_given_seed():
    coupling = grid_map(4, 5)
    qc = QuantumCircuit(6)
    for i in range(5):
        qc.cx(i, i + 1)
    a = GreedySubgraphLayout(coupling, seed=3).select_layout(qc)
    b = GreedySubgraphLayout(coupling, seed=3).select_layout(qc)
    assert a == b


def test_line_layout_path_is_connected():
    coupling = grid_map(4, 5)
    qc = QuantumCircuit(8)
    properties = PropertySet()
    LineLayout(coupling).run(qc, properties)
    layout = properties["initial_layout"]
    assert len(set(layout.values())) == 8


def test_line_layout_too_wide():
    coupling = line_map(3)
    qc = QuantumCircuit(5)
    with pytest.raises(ValueError, match="wider"):
        LineLayout(coupling).run(qc, PropertySet())


def test_layout_preserves_clbits():
    coupling = grid_map(2, 3)
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.measure(0, 0)
    widened = TrivialLayout(coupling).run(qc, PropertySet())
    assert widened.num_clbits == 2
    assert widened.instructions[-1].clbits == (0,)
