"""Compilation caching: determinism, equivalence, and counter behaviour.

The compile cache must be *invisible* except for speed: cold, warm, and
cache-disabled compilations have to produce byte-identical circuits at
every optimization level.  The golden digests below were captured from the
pre-cache compiler (PR 1), so they also pin the refactored level-3 trial
pipeline, the vectorized SABRE scoring, and the batched expected-fidelity
selection to the historical outputs.
"""

import hashlib

import pytest

from repro.bench.algorithms import qft
from repro.bench.suite import build_suite
from repro.circuits.random import random_circuit
from repro.compiler import (
    clear_compile_cache,
    compile_cache_stats,
    compile_circuit,
    configure_compile_cache,
)
from repro.compiler.cache import DEFAULT_MAXSIZE, CompileCache
from repro.compiler.passes.base import PassManager, PropertySet
from repro.compiler.passes.decompose import Decompose
from repro.compiler.passes.layout import GreedySubgraphLayout, LineLayout, TrivialLayout
from repro.compiler.passes.optimization import OptimizationLoop
from repro.compiler.passes.routing import SabreRouting
from repro.compiler.passes.synthesis import NativeSynthesis, VirtualRZ
from repro.fom.metrics import expected_fidelity
from repro.hardware import make_q20a, make_q20b


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts cold and leaves the global cache enabled."""
    clear_compile_cache()
    configure_compile_cache(maxsize=DEFAULT_MAXSIZE, enabled=True)
    yield
    clear_compile_cache()
    configure_compile_cache(maxsize=DEFAULT_MAXSIZE, enabled=True)


def result_digest(result) -> str:
    """Stable content digest of a compilation result (circuit + layouts)."""
    c = result.circuit
    text = f"{c.num_qubits};{c.num_clbits};{c.global_phase!r};" + ";".join(
        f"{i.name}{tuple(map(int, i.qubits))}"
        f"{tuple(map(float, i.params))}{tuple(map(int, i.clbits))}"
        for i in c.instructions
    )
    text += ";" + repr(sorted(result.initial_layout.items()))
    text += ";" + repr(sorted(result.final_layout.items()))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


#: Digests captured from the pre-overhaul compiler (seed 7): the refactor
#: must reproduce them bit-for-bit.
GOLDEN_DIGESTS = {
    ("rand8", 0, "Q20-A"): "1194dd7f42c871ca",
    ("rand8", 0, "Q20-B"): "1194dd7f42c871ca",
    ("rand8", 1, "Q20-A"): "4ea50245d0fa174c",
    ("rand8", 1, "Q20-B"): "4ea50245d0fa174c",
    ("rand8", 2, "Q20-A"): "e184a633afd6150d",
    ("rand8", 2, "Q20-B"): "e184a633afd6150d",
    ("rand8", 3, "Q20-A"): "149a094444bf1631",
    ("rand8", 3, "Q20-B"): "f0ec67c772b67423",
    ("qft6", 0, "Q20-A"): "cc74896bde97636b",
    ("qft6", 0, "Q20-B"): "cc74896bde97636b",
    ("qft6", 1, "Q20-A"): "bc810960145d46d5",
    ("qft6", 1, "Q20-B"): "bc810960145d46d5",
    ("qft6", 2, "Q20-A"): "1428c62c4f2ee011",
    ("qft6", 2, "Q20-B"): "1428c62c4f2ee011",
    ("qft6", 3, "Q20-A"): "85958bf55e229757",
    ("qft6", 3, "Q20-B"): "1428c62c4f2ee011",
    ("ghz10", 0, "Q20-A"): "c9a8cbac8f11b2cc",
    ("ghz10", 1, "Q20-A"): "306cf4368a2c17d2",
    ("ghz10", 2, "Q20-A"): "3cd1f02f06ccc499",
    ("ghz10", 3, "Q20-A"): "d4563dd3dfa9b9d8",
}


def _case_circuits():
    return {
        "rand8": random_circuit(8, 14, seed=3, measure=True),
        "qft6": qft(6),
        "ghz10": build_suite(
            algorithms=["ghz"], min_qubits=10, max_qubits=10
        )[0].circuit,
    }


def test_golden_digests_match_pre_cache_compiler():
    circuits = _case_circuits()
    devices = {"Q20-A": make_q20a(), "Q20-B": make_q20b()}
    for (name, level, device_name), expected in GOLDEN_DIGESTS.items():
        result = compile_circuit(
            circuits[name], devices[device_name],
            optimization_level=level, seed=7,
        )
        assert result_digest(result) == expected, (name, level, device_name)


@pytest.mark.parametrize("level", [0, 1, 2, 3])
def test_cold_warm_and_disabled_compiles_are_byte_identical(level):
    circuit = random_circuit(7, 12, seed=11, measure=True)
    device = make_q20a()

    cold = compile_circuit(circuit, device, optimization_level=level, seed=5)
    warm = compile_circuit(circuit, device, optimization_level=level, seed=5)
    configure_compile_cache(enabled=False)
    uncached = compile_circuit(circuit, device, optimization_level=level, seed=5)

    for other in (warm, uncached):
        assert other.circuit.instructions == cold.circuit.instructions
        assert other.circuit.global_phase == cold.circuit.global_phase
        assert other.circuit.num_qubits == cold.circuit.num_qubits
        assert other.initial_layout == cold.initial_layout
        assert other.final_layout == cold.final_layout


def test_cache_hit_counters_grow_on_repeated_compiles():
    circuit = qft(5)
    device = make_q20a()

    compile_circuit(circuit, device, optimization_level=3, seed=0)
    after_cold = compile_cache_stats()
    # The level-3 trials themselves share work (e.g. the routed trivial and
    # line trials may coincide), but the cold run is dominated by misses.
    assert after_cold["misses"] > 0
    assert after_cold["size"] > 0

    compile_circuit(circuit, device, optimization_level=3, seed=0)
    after_warm = compile_cache_stats()
    assert after_warm["misses"] == after_cold["misses"]
    # Warm rerun: every pass of every trial plus the shared prefix hits.
    assert after_warm["hits"] >= after_cold["hits"] + 10


def test_cache_entries_are_isolated_from_caller_mutation():
    circuit = qft(4)
    device = make_q20a()
    first = compile_circuit(circuit, device, optimization_level=2, seed=1)
    # Mutate the returned circuit in place...
    first.circuit.instructions.clear()
    first.circuit.metadata["mangled"] = True
    # ...and verify a warm compile is unaffected.
    second = compile_circuit(circuit, device, optimization_level=2, seed=1)
    assert len(second.circuit.instructions) > 0
    assert "mangled" not in second.circuit.metadata


def test_level3_matches_uncached_per_trial_reference():
    """The restructured trial loop equals the historical per-trial pipeline.

    Reference: each trial independently runs the full level-2 pipeline
    (including the now-shared decompose + optimization-loop prefix) with
    no cache, and candidates are scored with the scalar
    :func:`expected_fidelity` — exactly the pre-overhaul code path.
    """
    from repro.compiler.compile import _split_measurements

    circuit = random_circuit(9, 16, seed=23, measure=True)
    device = make_q20b()
    seed, num_trials = 13, 4
    body, _ = _split_measurements(circuit)
    coupling = device.coupling

    layouts = ["greedy", "trivial", "line"] + ["greedy"] * (num_trials - 3)
    best = None
    for trial in range(num_trials):
        layout = layouts[trial % len(layouts)]
        if layout == "trivial":
            layout_pass = TrivialLayout(coupling)
        elif layout == "line":
            layout_pass = LineLayout(coupling)
        else:
            layout_pass = GreedySubgraphLayout(coupling, seed=seed + trial)
        pipeline = [
            Decompose(),
            OptimizationLoop(),
            layout_pass,
            SabreRouting(coupling, seed=seed * 1000 + trial, lookahead=True),
            Decompose(),
            OptimizationLoop(),
            NativeSynthesis(),
            VirtualRZ(keep_final_rz=False),
        ]
        properties = PropertySet()
        compiled = PassManager(pipeline, collect_history=False).run(
            body, properties
        )
        score = expected_fidelity(
            compiled, device, calibration=device.reported_calibration
        )
        if best is None or score > best[0]:
            best = (score, compiled, properties)

    reference_body, reference_properties = best[1], best[2]
    result = compile_circuit(
        circuit, device, optimization_level=3, seed=seed, num_trials=num_trials
    )
    # The production result re-appends measurements; compare the body.
    measured = [i for i in result.circuit.instructions if i.name == "measure"]
    unmeasured = [i for i in result.circuit.instructions if i.name != "measure"]
    assert unmeasured == reference_body.instructions
    assert result.circuit.global_phase == reference_body.global_phase
    assert len(measured) == 9
    assert result.final_layout == {
        q: reference_properties["final_layout"][q] for q in range(9)
    }


def test_custom_cache_object_lru_eviction_and_stats():
    cache = CompileCache(maxsize=2)
    cache.put("a", "entry-a")
    cache.put("b", "entry-b")
    assert cache.get("a") == "entry-a"  # refresh 'a'
    cache.put("c", "entry-c")  # evicts 'b' (least recently used)
    assert cache.get("b") is None
    assert cache.get("a") == "entry-a"
    assert cache.get("c") == "entry-c"
    stats = cache.stats()
    assert stats["size"] == 2
    assert stats["hits"] == 3
    assert stats["misses"] == 1


def test_configure_compile_cache_shrinks_and_disables():
    circuit = qft(3)
    device = make_q20a()
    compile_circuit(circuit, device, optimization_level=1, seed=0)
    assert compile_cache_stats()["size"] > 0
    configure_compile_cache(maxsize=1)
    assert compile_cache_stats()["size"] <= 1
    configure_compile_cache(enabled=False)
    before = compile_cache_stats()["size"]
    compile_circuit(circuit, device, optimization_level=1, seed=0)
    assert compile_cache_stats()["size"] == before
    with pytest.raises(ValueError):
        configure_compile_cache(maxsize=0)
