"""Unit tests for native-gate synthesis and virtual RZ folding."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random import random_circuit
from repro.compiler.passes.base import PropertySet
from repro.compiler.passes.decompose import Decompose
from repro.compiler.passes.synthesis import NativeSynthesis, VirtualRZ
from repro.simulation.statevector import circuit_unitary

NATIVE = {"prx", "rz", "cz", "measure", "barrier"}


def _to_native(circuit, keep_final_rz=True):
    properties = PropertySet()
    lowered = Decompose().run(circuit, properties)
    native = NativeSynthesis().run(lowered, properties)
    return VirtualRZ(keep_final_rz=keep_final_rz).run(native, properties)


@pytest.mark.parametrize("seed", range(6))
def test_synthesis_preserves_unitary_exactly(seed):
    qc = random_circuit(3, 10, seed=seed)
    native = _to_native(qc)
    assert np.allclose(
        circuit_unitary(native), circuit_unitary(qc), atol=1e-8
    )


@pytest.mark.parametrize("seed", range(3))
def test_synthesis_emits_only_native_gates(seed):
    qc = random_circuit(3, 8, seed=seed, measure=True)
    native = _to_native(qc)
    assert all(ins.name in NATIVE for ins in native.instructions)


def test_virtual_rz_drops_all_rz():
    qc = random_circuit(3, 8, seed=1)
    native = _to_native(qc, keep_final_rz=False)
    assert all(ins.name in ("prx", "cz") for ins in native.instructions)


def test_virtual_rz_preserves_distribution():
    """Dropping trailing RZ must not change Z-basis probabilities."""
    from repro.simulation.statevector import ideal_distribution

    qc = random_circuit(3, 8, seed=2)
    qc.measure_all()
    with_rz = _to_native(qc, keep_final_rz=True)
    without_rz = _to_native(qc, keep_final_rz=False)
    d_with = ideal_distribution(with_rz)
    d_without = ideal_distribution(without_rz)
    for key in set(d_with) | set(d_without):
        assert d_with.get(key, 0.0) == pytest.approx(
            d_without.get(key, 0.0), abs=1e-9
        )


def test_hadamard_synthesis():
    qc = QuantumCircuit(1)
    qc.h(0)
    native = _to_native(qc)
    assert np.allclose(
        circuit_unitary(native), circuit_unitary(qc), atol=1e-10
    )
    prx_count = sum(1 for ins in native.instructions if ins.name == "prx")
    assert prx_count == 1


def test_cx_becomes_h_cz_h():
    qc = QuantumCircuit(2)
    qc.cx(0, 1)
    native = _to_native(qc)
    assert sum(1 for ins in native if ins.name == "cz") == 1
    assert np.allclose(
        circuit_unitary(native), circuit_unitary(qc), atol=1e-10
    )


def test_swap_synthesis():
    qc = QuantumCircuit(2)
    qc.swap(0, 1)
    properties = PropertySet()
    native = NativeSynthesis().run(qc, properties)
    assert sum(1 for ins in native if ins.name == "cz") == 3
    assert np.allclose(
        circuit_unitary(native), circuit_unitary(qc), atol=1e-10
    )


def test_diagonal_gate_becomes_single_rz():
    qc = QuantumCircuit(1)
    qc.rz(0.7, 0)
    native = NativeSynthesis().run(qc, PropertySet())
    assert [ins.name for ins in native] == ["rz"]


def test_rz_angle_normalized_with_phase_fix():
    qc = QuantumCircuit(1)
    qc.rz(7.0, 0)  # > pi, wraps
    native = _to_native(qc)
    assert np.allclose(
        circuit_unitary(native), circuit_unitary(qc), atol=1e-10
    )
    for ins in native.instructions:
        if ins.name == "rz":
            assert -math.pi < ins.params[0] <= math.pi


def test_prx_phi_commutation_rule():
    """rz(a) then prx(t, phi) == prx(t, phi - a) then rz(a)."""
    a, theta, phi = 0.9, 1.1, 0.3
    left = QuantumCircuit(1)
    left.rz(a, 0).prx(theta, phi, 0)
    right = QuantumCircuit(1)
    right.prx(theta, phi - a, 0).rz(a, 0)
    assert np.allclose(
        circuit_unitary(left), circuit_unitary(right), atol=1e-10
    )


def test_virtual_rz_rejects_non_native():
    qc = QuantumCircuit(1)
    qc.h(0)
    with pytest.raises(ValueError, match="native"):
        VirtualRZ().run(qc, PropertySet())


def test_synthesis_rejects_unlowered_gates():
    qc = QuantumCircuit(3)
    qc.ccx(0, 1, 2)
    with pytest.raises(ValueError, match="Decompose"):
        NativeSynthesis().run(qc, PropertySet())


def test_measure_and_barrier_flow_through():
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.barrier()
    qc.measure(0, 0)
    native = _to_native(qc)
    names = [ins.name for ins in native.instructions]
    assert "barrier" in names
    assert "measure" in names
