"""`compile_batch`: ordering, seed streams, and worker-count invariance."""

import numpy as np
import pytest

from repro.circuits.random import random_circuit
from repro.compiler import SEED_STRIDE, compile_batch, compile_circuit
from repro.compiler.passes.routing import (
    _select_swap,
    _swap_score,
)
from repro.fom.metrics import expected_fidelity, expected_fidelity_batch
from repro.hardware import make_q20a
from repro.hardware.coupling import grid_map


@pytest.fixture(scope="module")
def device():
    return make_q20a()


@pytest.fixture(scope="module")
def circuits():
    return [
        random_circuit(4 + (i % 5), 8 + i, seed=100 + i, measure=True)
        for i in range(7)
    ]


def _digests(results):
    return [
        (
            tuple(r.circuit.instructions),
            r.circuit.global_phase,
            tuple(sorted(r.final_layout.items())),
        )
        for r in results
    ]


def test_batch_matches_sequential_compiles(device, circuits):
    batch = compile_batch(circuits, device, optimization_level=2, seed=3)
    sequential = [
        compile_circuit(
            c, device, optimization_level=2, seed=3 + SEED_STRIDE * i
        )
        for i, c in enumerate(circuits)
    ]
    assert _digests(batch) == _digests(sequential)


def test_batch_is_worker_count_invariant(device, circuits):
    reference = compile_batch(
        circuits, device, optimization_level=3, seed=0, max_workers=1
    )
    for workers in (2, 4):
        again = compile_batch(
            circuits, device, optimization_level=3, seed=0, max_workers=workers
        )
        assert _digests(again) == _digests(reference)


def test_batch_preserves_input_order(device, circuits):
    results = compile_batch(
        circuits, device, optimization_level=1, seed=0, max_workers=4
    )
    assert len(results) == len(circuits)
    for circuit, result in zip(circuits, results):
        assert result.circuit.name == circuit.name
        # Every program qubit must appear in the layouts.
        assert sorted(result.initial_layout) == list(range(circuit.num_qubits))


def test_batch_explicit_seeds(device, circuits):
    seeds = [17 * i + 1 for i in range(len(circuits))]
    batch = compile_batch(
        circuits, device, optimization_level=2, seeds=seeds, max_workers=2
    )
    sequential = [
        compile_circuit(c, device, optimization_level=2, seed=s)
        for c, s in zip(circuits, seeds)
    ]
    assert _digests(batch) == _digests(sequential)
    with pytest.raises(ValueError):
        compile_batch(circuits, device, seeds=seeds[:-1])


def test_batch_on_result_callback_sees_every_circuit(device, circuits):
    seen = []
    results = compile_batch(
        circuits, device, optimization_level=1, seed=0, max_workers=3,
        on_result=lambda index, result: seen.append((index, result)),
    )
    assert sorted(index for index, _ in seen) == list(range(len(circuits)))
    by_index = dict(seen)
    for index, result in enumerate(results):
        assert by_index[index] is result


def test_process_pool_compile_is_byte_identical_to_sequential(device, circuits):
    """Golden digest (PR 6): the spawn-based process pool must reproduce
    the sequential compile byte-for-byte, QASM text included."""
    from repro.circuits.qasm import to_qasm

    sequential = compile_batch(
        circuits, device, optimization_level=3, seed=0,
        max_workers=1, workers_mode="thread",
    )
    golden = [to_qasm(result.circuit) for result in sequential]
    for workers, mode in ((4, "process"), (2, "thread")):
        again = compile_batch(
            circuits, device, optimization_level=3, seed=0,
            max_workers=workers, workers_mode=mode,
        )
        assert [to_qasm(r.circuit) for r in again] == golden, (workers, mode)
        assert _digests(again) == _digests(sequential), (workers, mode)
        for ref, other in zip(sequential, again):
            assert other.initial_layout == ref.initial_layout
            assert other.final_layout == ref.final_layout
            assert dict(other.properties) == dict(ref.properties)


def test_process_pool_results_reattach_parent_device(device, circuits):
    """Worker processes strip the device from shipped results; the parent
    must hand back results carrying its own device object."""
    results = compile_batch(
        circuits, device, optimization_level=1, seed=0,
        max_workers=4, workers_mode="process",
    )
    assert all(result.device is device for result in results)
    assert all(result.optimization_level == 1 for result in results)


def test_empty_batch_returns_empty_list(device):
    assert compile_batch([], device) == []
    assert compile_batch(
        [], device, max_workers=4, workers_mode="process"
    ) == []


def test_expected_fidelity_batch_is_bit_identical(device, circuits):
    compiled = [
        compile_circuit(c, device, optimization_level=2, seed=9).circuit
        for c in circuits
    ]
    batch = expected_fidelity_batch(compiled, device)
    scalar = [expected_fidelity(c, device) for c in compiled]
    assert batch.tolist() == scalar  # exact equality, not approx
    reported = expected_fidelity_batch(
        compiled, device, calibration=device.reported_calibration
    )
    assert reported.tolist() == scalar
    assert expected_fidelity_batch([], device).shape == (0,)


def test_expected_fidelity_batch_rejects_missing_calibration(device, circuits):
    import dataclasses

    compiled = compile_circuit(
        circuits[0], device, optimization_level=2, seed=0
    ).circuit
    cal = device.reported_calibration
    used_edge = next(
        tuple(sorted(i.qubits)) for i in compiled.instructions
        if i.num_qubits == 2 and i.is_unitary
    )
    partial = dataclasses.replace(
        cal,
        two_qubit_fidelity={
            e: f for e, f in cal.two_qubit_fidelity.items() if e != used_edge
        },
    )
    with pytest.raises(KeyError):
        expected_fidelity_batch([compiled], device, calibration=partial)


def test_vectorized_swap_selection_matches_scalar_reference():
    """`_select_swap` must pick exactly what the scalar scan would."""
    rng = np.random.default_rng(0)
    coupling = grid_map(4, 5)
    tables = coupling.routing_tables()
    circuit = random_circuit(12, 30, seed=5, two_qubit_prob=0.6)
    gates = [
        i for i in circuit.instructions
        if i.num_qubits == 2 and i.is_unitary
    ]
    for trial in range(25):
        tau = list(rng.permutation(coupling.num_qubits))
        tau_dict = {v: p for v, p in enumerate(tau)}
        decay = 1.0 + 0.001 * rng.integers(0, 5, coupling.num_qubits)
        front = list(rng.choice(len(gates), size=3, replace=False))
        look = list(rng.choice(len(gates), size=6, replace=False))
        front_gates = [gates[i] for i in front]
        look_gates = [gates[i] for i in look]
        candidates = sorted(
            {tuple(sorted(e)) for e in coupling.edges}
        )
        order = list(candidates)
        rng.shuffle(order)
        chosen = _select_swap(
            order, front_gates, look_gates, tau, tables.distance, decay
        )
        best, best_score = None, float("inf")
        for swap in order:
            score = _swap_score(
                swap, front_gates, look_gates, tau_dict,
                tables.distance, decay,
            )
            if score < best_score:
                best_score, best = score, swap
        assert chosen == best
