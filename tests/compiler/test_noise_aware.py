"""Unit tests for noise-aware layout and routing."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random import random_circuit
from repro.compiler.passes.base import PropertySet
from repro.compiler.passes.noise_aware import (
    NoiseAwareLayout,
    NoiseAwareRouting,
    compile_noise_aware,
    effective_distance_matrix,
)
from repro.hardware import make_q20a
from repro.hardware.calibration import random_calibration
from repro.hardware.coupling import line_map
from repro.simulation.statevector import ideal_distribution


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def test_effective_distance_reduces_to_hops_on_perfect_device():
    coupling = line_map(4)
    rng = np.random.default_rng(0)
    calibration = random_calibration(
        coupling, rng, two_qubit_fidelity=(1.0, 1.0)
    )
    dist = effective_distance_matrix(coupling, calibration)
    assert dist[0, 3] == pytest.approx(3.0)
    assert dist[0, 1] == pytest.approx(1.0)


def test_effective_distance_penalizes_bad_edges():
    coupling = line_map(3)
    rng = np.random.default_rng(1)
    calibration = random_calibration(coupling, rng)
    calibration.two_qubit_fidelity[(0, 1)] = 0.5   # terrible link
    calibration.two_qubit_fidelity[(1, 2)] = 0.999
    dist = effective_distance_matrix(coupling, calibration)
    assert dist[0, 1] > dist[1, 2]


def test_noise_aware_layout_prefers_good_region(device):
    qc = QuantumCircuit(2)
    for _ in range(5):
        qc.cx(0, 1)
    layout = NoiseAwareLayout(
        device.coupling, device.reported_calibration, seed=0
    ).select_layout(qc)
    a, b = layout[0], layout[1]
    assert device.coupling.has_edge(a, b)
    # The chosen edge is among the best third of edges by fidelity.
    chosen = device.reported_calibration.edge_fidelity(a, b)
    fidelities = sorted(
        device.reported_calibration.two_qubit_fidelity.values(), reverse=True
    )
    assert chosen >= fidelities[len(fidelities) // 3]


def test_noise_aware_layout_injective(device):
    qc = random_circuit(8, 12, seed=2)
    layout = NoiseAwareLayout(
        device.coupling, device.reported_calibration, seed=1
    ).select_layout(qc)
    assert len(set(layout.values())) == 8


def test_noise_aware_routing_respects_coupling(device):
    qc = random_circuit(6, 10, seed=3)
    widened = qc.remap_qubits({i: i for i in range(6)}, num_qubits=20)
    properties = PropertySet()
    routed = NoiseAwareRouting(
        device.coupling, device.reported_calibration, seed=0
    ).run(widened, properties)
    for instruction in routed.instructions:
        if instruction.is_unitary and instruction.num_qubits == 2:
            assert device.coupling.has_edge(*instruction.qubits)


def test_compile_noise_aware_preserves_distribution(device):
    qc = random_circuit(5, 8, seed=4, measure=True)
    reference = ideal_distribution(qc)
    compiled = compile_noise_aware(qc, device, seed=1)
    result = ideal_distribution(compiled)
    for key in set(reference) | set(result):
        assert reference.get(key, 0.0) == pytest.approx(
            result.get(key, 0.0), abs=1e-6
        )


def test_compile_noise_aware_native(device):
    qc = random_circuit(4, 6, seed=5, measure=True)
    compiled = compile_noise_aware(qc, device, seed=0)
    device.validate_circuit(compiled)


def test_noise_aware_beats_or_matches_geometric_on_avg(device):
    """Error-aware routing should not lose expected fidelity on average."""
    from repro.compiler import compile_circuit
    from repro.fom import expected_fidelity

    geo, aware = [], []
    for seed in range(6):
        qc = random_circuit(6, 10, seed=100 + seed, measure=True)
        geometric = compile_circuit(qc, device, optimization_level=2, seed=seed)
        noise_aware = compile_noise_aware(qc, device, seed=seed)
        geo.append(expected_fidelity(geometric.circuit, device))
        aware.append(expected_fidelity(noise_aware, device))
    assert np.mean(aware) > np.mean(geo) - 0.05
