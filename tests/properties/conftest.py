"""Fixtures for the property tier (see :mod:`.harness` for the knobs)."""

import pytest

from .harness import ALL_FAMILIES, PROPERTY_CASES, PROPERTY_SEED, SMALL_SIZES

assert set(SMALL_SIZES) == set(ALL_FAMILIES), "keep SMALL_SIZES in sync with the zoo"


def pytest_report_header(config):
    """Name the harness seed so any failure is replayable verbatim."""
    return (
        f"property tier: REPRO_PROPERTY_SEED={PROPERTY_SEED} "
        f"REPRO_PROPERTY_CASES={PROPERTY_CASES}"
    )


@pytest.fixture(params=ALL_FAMILIES)
def family(request) -> str:
    """Parametrizes a test over every zoo topology family."""
    return request.param
