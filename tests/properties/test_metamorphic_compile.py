"""Metamorphic compile properties, checked on every zoo topology family.

Three relations pin the whole compile stack on arbitrary couplings:

1. **Distribution preservation** — compiling at any optimization level
   must not change the circuit's noiseless measurement distribution
   (layout/routing permutations are undone by the measurement remapping).
2. **State-permutation equivalence** — for unmeasured circuits compiled
   with ``keep_final_rz=True``, the compiled state from ``|0...0>`` is
   exactly the original state transported onto the ``final_layout``
   wires (ancillas back in ``|0>``), up to a global phase.
3. **Coupling legality** — every two-qubit gate of a compiled or routed
   circuit acts on a coupling-map edge, and the recorded final layout is
   a permutation.

Plus the noise-monotonicity axiom of the expected-fidelity metric:
degrading any calibration entry can never raise a circuit's score.
"""

import math

import numpy as np
import pytest

from repro.circuits.random import random_circuit
from repro.compiler import compile_circuit
from repro.compiler.passes.routing import route_circuit
from repro.fom.metrics import esp, expected_fidelity
from repro.hardware.calibration import Calibration
from repro.simulation.statevector import ideal_distribution, simulate_statevector

from .harness import case_seeds, small_device

LEVELS = (0, 1, 2, 3)


def _random_program(device, seed: int, measure: bool) -> "object":
    rng = np.random.default_rng(seed)
    width = int(rng.integers(2, min(4, device.num_qubits) + 1))
    depth = int(rng.integers(2, 9))
    return random_circuit(width, depth, seed=seed, measure=measure)


@pytest.mark.parametrize("level", LEVELS)
def test_compile_preserves_distribution(family, level):
    device = small_device(family)
    for seed in case_seeds(family, f"dist-l{level}"):
        program = _random_program(device, seed, measure=True)
        reference = ideal_distribution(program)
        result = compile_circuit(
            program, device, optimization_level=level, seed=seed
        )
        compiled = ideal_distribution(result.circuit)
        for key in set(reference) | set(compiled):
            assert math.isclose(
                reference.get(key, 0.0), compiled.get(key, 0.0), abs_tol=1e-6
            ), (family, level, seed, key)


def test_compile_state_equivalence_up_to_final_layout(family):
    """U_compiled |0...0> is U_program |0...0> on the final-layout wires."""
    device = small_device(family)
    for seed in case_seeds(family, "state"):
        program = _random_program(device, seed, measure=False)
        n = program.num_qubits
        result = compile_circuit(
            program, device, optimization_level=3, seed=seed,
            keep_final_rz=True,
        )
        final = result.final_layout
        assert sorted(final) == list(range(n))

        psi_program = simulate_statevector(program).data
        psi_compiled = simulate_statevector(result.circuit).data

        # Index of the device basis state holding program state ``z``:
        # bit p of z moves to physical wire final[p]; ancillas stay 0.
        targets = np.zeros(1 << n, dtype=np.int64)
        for p in range(n):
            bit = (np.arange(1 << n) >> p) & 1
            targets |= bit.astype(np.int64) << final[p]

        transported = np.zeros_like(psi_compiled)
        transported[targets] = psi_program
        # Align global phase on the largest-amplitude component.
        anchor = int(np.argmax(np.abs(transported)))
        phase = psi_compiled[anchor] / transported[anchor]
        assert abs(abs(phase) - 1.0) < 1e-6, (family, seed)
        assert np.allclose(psi_compiled, transported * phase, atol=1e-6), (
            family, seed,
        )


@pytest.mark.parametrize("level", LEVELS)
def test_compiled_gates_respect_coupling(family, level):
    device = small_device(family)
    for seed in case_seeds(family, f"legal-l{level}"):
        program = _random_program(device, seed, measure=True)
        result = compile_circuit(
            program, device, optimization_level=level, seed=seed
        )
        for instruction in result.circuit.instructions:
            if instruction.num_qubits == 2:
                assert device.coupling.has_edge(*instruction.qubits), (
                    family, level, seed, instruction,
                )


def test_router_respects_coupling_and_permutation(family):
    """The raw router, without the rest of the pipeline, stays legal."""
    device = small_device(family)
    coupling = device.coupling
    for seed in case_seeds(family, "route"):
        program = random_circuit(
            min(4, coupling.num_qubits), 6, seed=seed, measure=True
        )
        routed, final = route_circuit(program, coupling, seed=seed)
        for instruction in routed.instructions:
            if instruction.is_unitary and instruction.num_qubits == 2:
                assert coupling.has_edge(*instruction.qubits), (family, seed)
        assert sorted(final.values()) == list(range(coupling.num_qubits))


def _degrade(calibration: Calibration, scale: float) -> Calibration:
    """Scale every infidelity up by ``scale`` (T1/T2 left untouched)."""
    def worse(value: float) -> float:
        return max(1.0 - (1.0 - value) * scale, 0.5)

    degraded = calibration.copy(timestamp=f"degraded-x{scale}")
    for table in (
        degraded.one_qubit_fidelity,
        degraded.two_qubit_fidelity,
        degraded.readout_fidelity,
    ):
        for key in table:
            table[key] = worse(table[key])
    return degraded


def test_expected_fidelity_monotone_in_noise(family):
    """Adding infidelity anywhere can only lower the predicted score."""
    device = small_device(family)
    for seed in case_seeds(family, "monotone"):
        program = _random_program(device, seed, measure=True)
        compiled = compile_circuit(
            program, device, optimization_level=2, seed=seed
        ).circuit
        base_cal = device.reported_calibration
        scores = [
            expected_fidelity(compiled, device, calibration=cal)
            for cal in (base_cal, _degrade(base_cal, 1.5), _degrade(base_cal, 3.0))
        ]
        assert scores[0] >= scores[1] >= scores[2], (family, seed, scores)
        assert all(0.0 <= score <= 1.0 for score in scores)
        # ESP inherits the bound: it multiplies a decay factor in [0, 1].
        assert esp(compiled, device) <= expected_fidelity(compiled, device) + 1e-12
