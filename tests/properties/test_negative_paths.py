"""Negative-path coverage: invalid topologies fail loudly and helpfully.

Every constructor-level rejection must carry an actionable message (what
was wrong, what to do instead) — these errors are the zoo's user
interface for typos and impossible requests.
"""

import pytest

from repro.hardware.coupling import CouplingMap, ring_map
from repro.hardware.topologies import (
    TOPOLOGIES,
    build_topology,
    ladder_map,
    random_coupling_map,
    validate_coupling,
)
from repro.hardware.zoo import device_from_spec, make_zoo_device


# ---------------------------------------------------------------------------
# CouplingMap construction
# ---------------------------------------------------------------------------

def test_out_of_range_edge_names_valid_interval():
    with pytest.raises(ValueError, match=r"out of range.*\[0, 3\]"):
        CouplingMap(4, [(0, 7)])


def test_self_loop_names_offending_qubit():
    with pytest.raises(ValueError, match="self-loop on qubit 2.*distinct"):
        CouplingMap(4, [(0, 1), (2, 2)])


def test_duplicate_edge_rejected_both_orientations():
    with pytest.raises(ValueError, match=r"duplicate edge \(1, 2\)"):
        CouplingMap(4, [(1, 2), (1, 2)])
    with pytest.raises(ValueError, match="duplicate edge"):
        CouplingMap(4, [(1, 2), (2, 1)])


def test_negative_qubit_count_rejected():
    with pytest.raises(ValueError, match="num_qubits"):
        CouplingMap(-1, [])


def test_validate_coupling_rejects_disconnected():
    disconnected = CouplingMap(4, [(0, 1), (2, 3)])
    with pytest.raises(ValueError, match="disconnected.*2 components"):
        validate_coupling(disconnected, context="test graph")


def test_validate_coupling_rejects_empty():
    with pytest.raises(ValueError, match="empty"):
        validate_coupling(CouplingMap(0, []), context="test graph")


# ---------------------------------------------------------------------------
# Topology constructors
# ---------------------------------------------------------------------------

def test_ring_too_small_suggests_line():
    with pytest.raises(ValueError, match="at least 3 qubits.*line_map"):
        ring_map(2)


def test_ladder_rejects_odd_and_tiny_sizes():
    with pytest.raises(ValueError, match="even qubit count"):
        ladder_map(7)
    with pytest.raises(ValueError, match="even qubit count"):
        ladder_map(2)


def test_random_map_rejects_impossible_degree():
    with pytest.raises(ValueError, match="degree bound must be >= 2"):
        random_coupling_map(8, degree=1)
    with pytest.raises(ValueError, match=">= 2 qubits"):
        random_coupling_map(1)


def test_grid_family_rejects_prime_sizes():
    with pytest.raises(ValueError, match="prime qubit count"):
        build_topology("grid", 13)


def test_heavy_hex_below_smallest_lattice():
    with pytest.raises(ValueError, match="smallest heavy-hex lattice"):
        build_topology("heavy_hex", 5)


def test_unknown_topology_lists_available():
    with pytest.raises(ValueError, match="unknown topology family 'torus'"):
        build_topology("torus", 8)


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_too_small_requests_rejected_per_family(name):
    family = TOPOLOGIES[name]
    if family.min_qubits <= 1:
        pytest.skip("family accepts any positive size")
    with pytest.raises(ValueError):
        family.build(family.min_qubits - 1)


# ---------------------------------------------------------------------------
# Zoo construction and spec parsing
# ---------------------------------------------------------------------------

def test_unknown_zoo_family_lists_available():
    with pytest.raises(ValueError, match="unknown zoo family 'moebius'.*ring"):
        make_zoo_device("moebius")


def test_unknown_noise_tier_lists_available():
    with pytest.raises(ValueError, match="unknown noise tier 'pristine'.*clean"):
        make_zoo_device("ring", tier="pristine")


def test_negative_drift_scale_rejected():
    with pytest.raises(ValueError, match="drift_scale"):
        make_zoo_device("ring", drift_scale=-0.5)


def test_spec_rejects_garbage():
    with pytest.raises(ValueError, match="empty zoo spec"):
        device_from_spec("zoo:")
    with pytest.raises(ValueError, match="must be integers"):
        device_from_spec("zoo:ring:twelve")
    with pytest.raises(ValueError, match="at most"):
        device_from_spec("zoo:ring:12:noisy:1:extra")
