"""Shared harness for the metamorphic property tier.

Every test in this package draws its random inputs from a seeded stream
controlled by two environment variables:

* ``REPRO_PROPERTY_SEED``  — base seed (default ``0``).  The fast CI job
  pins it so the tier is reproducible on every push; the nightly sweep
  sets it to the run id for a fresh randomized sample each night.
* ``REPRO_PROPERTY_CASES`` — random cases per (test, family) combination
  (default ``2``; the nightly sweep raises it).

Both the zoo devices and the per-case circuit seeds are pure functions
of ``REPRO_PROPERTY_SEED`` (per-case seeds fold in the family and test
label through SHA-256), so a failing run replays locally by exporting
the *same harness seed* — ``REPRO_PROPERTY_SEED=<the run's seed>`` — and
rerunning the failing test.  The seed is printed in the pytest header
and, for nightly runs, equals the workflow run id; the ``(family, case
seed)`` pair in a failure's assertion payload then pinpoints the case
inside that run.
"""

import hashlib
import os

import numpy as np

from repro.hardware.zoo import make_zoo_device, zoo_families

PROPERTY_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "0"))
PROPERTY_CASES = int(os.environ.get("REPRO_PROPERTY_CASES", "2"))

#: Small per-family device sizes keeping full-statevector checks fast.
SMALL_SIZES = {
    "line": 5,
    "ring": 6,
    "ladder": 6,
    "star": 5,
    "grid": 6,
    "heavy_hex": 6,
    "random": 7,
}

ALL_FAMILIES = zoo_families()

_DEVICE_CACHE = {}


def small_device(family: str):
    """A small, deterministic zoo device of ``family`` (cached per session)."""
    if family not in _DEVICE_CACHE:
        _DEVICE_CACHE[family] = make_zoo_device(
            family, SMALL_SIZES[family], tier="typical", seed=PROPERTY_SEED
        )
    return _DEVICE_CACHE[family]


def stable_hash(text: str) -> int:
    """Process-stable string hash (``hash()`` is salted per interpreter)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


def case_seeds(family: str, label: str, count: int | None = None) -> list:
    """Deterministic per-case seeds derived from the harness seed."""
    rng = np.random.default_rng([PROPERTY_SEED, stable_hash(f"{family}:{label}")])
    size = PROPERTY_CASES if count is None else count
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=size)]
