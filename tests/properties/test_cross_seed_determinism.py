"""Worker-count and worker-mode invariance on a non-grid zoo device.

The batched stages advertise bit-identical results for every
``max_workers`` *and* execution mode (thread pool vs spawn-based
process pool, PR 6); the guarantee has only ever been regression-tested
on the 4x5 grid devices.  This suite pins it on a ring (and the zoo's
seeded random graph for the executor), where routing inserts different
SWAP patterns and the per-circuit seed streams cover different shapes.
"""

import numpy as np
import pytest

from repro.bench.suite import build_suite
from repro.compiler.compile import compile_batch
from repro.ml.forest import RandomForestRegressor
from repro.ml.model_selection import grid_search
from repro.predictor.dataset import build_dataset
from repro.simulation.executor import QPUExecutor

from .harness import PROPERTY_SEED, small_device

WORKER_COUNTS = (1, 2, 4)

# The (workers, mode) grid every pooled stage must be invariant over.
# The sequential thread row doubles as the reference.
WORKER_MATRIX = tuple(
    (workers, mode)
    for mode in ("thread", "process")
    for workers in WORKER_COUNTS
)


@pytest.fixture(scope="module")
def ring_device():
    return small_device("ring")


@pytest.fixture(scope="module")
def tiny_suite():
    return build_suite(
        algorithms=["ghz", "qft", "vqe", "dj"], min_qubits=2, max_qubits=4
    )


def _dataset(suite, device, max_workers, workers_mode="thread"):
    return build_dataset(
        suite, device,
        optimization_level=3, shots=250, seed=PROPERTY_SEED,
        max_workers=max_workers, workers_mode=workers_mode,
    )


def test_build_dataset_worker_count_and_mode_invariant(ring_device, tiny_suite):
    reference = _dataset(tiny_suite, ring_device, max_workers=1)
    assert len(reference) == len(tiny_suite)
    for workers, mode in WORKER_MATRIX[1:]:
        other = _dataset(
            tiny_suite, ring_device, max_workers=workers, workers_mode=mode
        )
        assert np.array_equal(reference.X, other.X), (workers, mode)
        assert np.array_equal(reference.y, other.y), (workers, mode)
        for fom in ("Number of gates", "Circuit depth", "Expected fidelity", "ESP"):
            assert np.array_equal(
                reference.fom_column(fom), other.fom_column(fom)
            ), (workers, mode, fom)
        for a, b in zip(reference.entries, other.entries):
            assert a.name == b.name
            assert a.success_probability == b.success_probability


def test_run_batch_worker_count_invariant(tiny_suite):
    device = small_device("random")
    compiled = [
        result.circuit
        for result in compile_batch(
            [entry.circuit for entry in tiny_suite],
            device, optimization_level=2, seed=PROPERTY_SEED,
        )
    ]
    executor = QPUExecutor(device)
    runs = {
        workers: executor.run_batch(
            compiled, shots=300, seed=PROPERTY_SEED, max_workers=workers
        )
        for workers in WORKER_COUNTS
    }
    reference = runs[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        for ref_execution, other_execution in zip(reference, runs[workers]):
            assert ref_execution.counts == other_execution.counts, workers


def test_grid_search_worker_count_and_mode_invariant(ring_device, tiny_suite):
    data = _dataset(tiny_suite, ring_device, max_workers=2)
    grid = {
        "n_estimators": [10, 20],
        "max_depth": [None, 4],
        "min_samples_leaf": [1],
        "min_samples_split": [2],
    }
    outcomes = [
        grid_search(
            RandomForestRegressor(random_state=0, max_features="sqrt"),
            grid, data.X, data.y,
            n_splits=3, seed=PROPERTY_SEED,
            max_workers=workers, workers_mode=mode,
        )
        for workers, mode in WORKER_MATRIX
    ]
    reference = outcomes[0]
    for (workers, mode), other in zip(WORKER_MATRIX[1:], outcomes[1:]):
        assert other.best_params == reference.best_params, (workers, mode)
        assert other.best_score == reference.best_score, (workers, mode)
        assert [score for _, score in other.results] == [
            score for _, score in reference.results
        ], (workers, mode)


def test_forest_fit_mode_invariant(ring_device, tiny_suite):
    """A process-pool forest fit must be bit-identical to the sequential
    fit: same predictions, same importances, to the last ulp."""
    data = _dataset(tiny_suite, ring_device, max_workers=2)
    reference = RandomForestRegressor(
        n_estimators=8, random_state=PROPERTY_SEED, max_workers=1
    ).fit(data.X, data.y)
    for workers, mode in WORKER_MATRIX[1:]:
        other = RandomForestRegressor(
            n_estimators=8, random_state=PROPERTY_SEED,
            max_workers=workers, workers_mode=mode,
        ).fit(data.X, data.y)
        assert np.array_equal(
            reference.predict(data.X), other.predict(data.X)
        ), (workers, mode)
        assert np.array_equal(
            reference.feature_importances_, other.feature_importances_
        ), (workers, mode)
