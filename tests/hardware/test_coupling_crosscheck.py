"""Cross-checks of the dependency-free graph kernels against networkx.

``CouplingMap`` stopped depending on networkx when the serving stack was
refactored; these tests pin the ported algorithms — bidirectional
shortest path (including its tie-break between equal-length paths), BFS
discovery order, the all-pairs distance matrix, connectivity, the
weighted Dijkstra sweep of noise-aware routing, and the heavy-hex
lattice generator — against the networkx originals.  networkx is a
test-only extra now, so the module skips when it is missing.
"""

import itertools
import math
import random

import numpy as np
import pytest

nx = pytest.importorskip("networkx")

from repro.compiler.passes.noise_aware import _dijkstra_lengths  # noqa: E402
from repro.hardware.coupling import (  # noqa: E402
    CouplingMap,
    hexagonal_lattice,
)


def random_graph(rng, max_qubits=12):
    num_qubits = rng.randint(2, max_qubits)
    possible = list(itertools.combinations(range(num_qubits), 2))
    rng.shuffle(possible)
    edges = possible[: rng.randint(1, len(possible))]
    graph = nx.Graph()
    graph.add_nodes_from(range(num_qubits))
    for a, b in edges:
        graph.add_edge(a, b)
    return CouplingMap(num_qubits, edges), graph


def test_shortest_path_matches_networkx_tiebreaks():
    """Equal-length paths must resolve exactly as networkx resolves them.

    Routing (and with it the golden compile digests) depends on *which*
    shortest path comes back, not just its length.
    """
    rng = random.Random(0)
    for _ in range(60):
        coupling, graph = random_graph(rng)
        for a in range(coupling.num_qubits):
            for b in range(coupling.num_qubits):
                try:
                    expected = nx.shortest_path(graph, a, b)
                except nx.NetworkXNoPath:
                    with pytest.raises(ValueError, match="no path"):
                        coupling.shortest_path(a, b)
                    continue
                assert coupling.shortest_path(a, b) == expected


def test_distance_matrix_and_connectivity_match_networkx():
    rng = random.Random(1)
    for _ in range(60):
        coupling, graph = random_graph(rng)
        n = coupling.num_qubits
        expected = np.full((n, n), np.inf)
        for source, lengths in nx.all_pairs_shortest_path_length(graph):
            for target, length in lengths.items():
                expected[source, target] = length
        assert np.array_equal(coupling.distance_matrix(), expected)
        assert coupling.is_connected() == nx.is_connected(graph)


def test_bfs_order_matches_networkx_bfs_tree():
    """``LineLayout`` consumes this exact discovery order."""
    rng = random.Random(2)
    for _ in range(40):
        coupling, graph = random_graph(rng)
        for start in range(coupling.num_qubits):
            assert coupling.bfs_order(start) == list(nx.bfs_tree(graph, start))


def test_subgraph_connectivity_matches_networkx():
    rng = random.Random(3)
    for _ in range(40):
        coupling, graph = random_graph(rng)
        qubits = rng.sample(
            range(coupling.num_qubits),
            rng.randint(1, coupling.num_qubits),
        )
        expected = nx.is_connected(graph.subgraph(qubits))
        assert coupling.subgraph_is_connected(qubits) == expected


def test_dijkstra_lengths_bit_identical_to_networkx():
    """Float path sums must match networkx to the last bit.

    Equal-cost paths can differ in their *float* sums by an ulp depending
    on relaxation order; noise-aware routing consumes these distances, so
    the port replicates networkx's heap discipline exactly.
    """
    rng = random.Random(4)
    for _ in range(40):
        num_qubits = rng.randint(2, 12)
        possible = list(itertools.combinations(range(num_qubits), 2))
        rng.shuffle(possible)
        edges = sorted(possible[: rng.randint(1, len(possible))])
        adjacency = [{} for _ in range(num_qubits)]
        graph = nx.Graph()
        graph.add_nodes_from(range(num_qubits))
        for a, b in edges:
            weight = 1.0 - math.log(max(rng.uniform(0.8, 0.999), 1e-6))
            adjacency[a][b] = weight
            adjacency[b][a] = weight
            graph.add_edge(a, b, weight=weight)
        for source in range(num_qubits):
            mine = _dijkstra_lengths(adjacency, source)
            theirs = nx.single_source_dijkstra_path_length(
                graph, source, weight="weight"
            )
            assert set(mine) == set(theirs)
            for target in mine:
                assert mine[target] == theirs[target]


@pytest.mark.parametrize("distance", [1, 2, 3, 4, 5])
def test_hexagonal_lattice_matches_networkx(distance):
    graph = nx.hexagonal_lattice_graph(distance, distance)
    nodes, edges = hexagonal_lattice(distance, distance)
    assert nodes == sorted(graph.nodes)
    assert {frozenset(edge) for edge in edges} == {
        frozenset(edge) for edge in graph.edges
    }


def test_hexagonal_lattice_empty():
    assert hexagonal_lattice(0, 3) == ([], [])
    assert hexagonal_lattice(3, 0) == ([], [])
