"""Unit tests for device models and the Q20 pair."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.hardware import (
    IQM_NATIVE_GATES,
    make_device,
    make_q20a,
    make_q20b,
    q20_coupling,
)
from repro.hardware.coupling import line_map


def test_q20_devices_shape():
    for device in (make_q20a(), make_q20b()):
        assert device.num_qubits == 20
        assert device.native_gates == IQM_NATIVE_GATES
        assert len(device.coupling.edges) == 31
        assert device.coupling.is_connected()


def test_q20_names():
    assert make_q20a().name == "Q20-A"
    assert make_q20b().name == "Q20-B"


def test_q20a_noisier_than_q20b():
    qa, qb = make_q20a(), make_q20b()
    assert (
        qa.true_calibration.mean_two_qubit_fidelity()
        < qb.true_calibration.mean_two_qubit_fidelity()
    )
    assert qa.noise.crosstalk_two_two > qb.noise.crosstalk_two_two


def test_devices_deterministic():
    a1, a2 = make_q20a(), make_q20a()
    assert a1.true_calibration.t1 == a2.true_calibration.t1
    assert a1.reported_calibration.t1 == a2.reported_calibration.t1


def test_reported_differs_from_true():
    device = make_q20a()
    diffs = [
        abs(device.reported_calibration.t1[q] - device.true_calibration.t1[q])
        for q in range(20)
    ]
    assert all(d > 0 for d in diffs)


def test_validate_accepts_native_circuit():
    device = make_q20a()
    qc = QuantumCircuit(20, 20)
    qc.prx(0.3, 0.1, 0)
    qc.cz(0, 1)
    qc.rz(0.2, 1)
    qc.measure(0, 0)
    device.validate_circuit(qc)  # no raise


def test_validate_rejects_non_native_gate():
    device = make_q20a()
    qc = QuantumCircuit(2)
    qc.h(0)
    with pytest.raises(ValueError, match="not native"):
        device.validate_circuit(qc)


def test_validate_rejects_non_adjacent_cz():
    device = make_q20a()
    qc = QuantumCircuit(20)
    qc.cz(0, 19)
    with pytest.raises(ValueError, match="non-adjacent"):
        device.validate_circuit(qc)


def test_validate_rejects_too_wide():
    device = make_q20a()
    qc = QuantumCircuit(25)
    with pytest.raises(ValueError, match="qubits"):
        device.validate_circuit(qc)


def test_make_device_custom():
    device = make_device("test", line_map(4), seed=5)
    assert device.num_qubits == 4
    assert device.supports("prx")
    assert not device.supports("h")


def test_q20_coupling_is_grid():
    coupling = q20_coupling()
    assert coupling.num_qubits == 20
    assert coupling.has_edge(0, 1)
    assert coupling.has_edge(0, 5)
    assert not coupling.has_edge(4, 5)  # row wrap must not connect
