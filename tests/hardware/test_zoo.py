"""Unit tests for the device zoo (families, tiers, seeds, specs)."""

import numpy as np
import pytest

from repro.evaluation.persistence import device_fingerprint
from repro.hardware.zoo import (
    DEFAULT_SIZES,
    NOISE_TIERS,
    device_from_spec,
    make_zoo_device,
    zoo_families,
    zoo_summary,
)


def test_every_family_has_a_default_size():
    assert set(DEFAULT_SIZES) == set(zoo_families())


def test_devices_are_bit_reproducible():
    a = make_zoo_device("heavy_hex", 16, tier="noisy", seed=3)
    b = make_zoo_device("heavy_hex", 16, tier="noisy", seed=3)
    assert device_fingerprint(a) == device_fingerprint(b)


def test_seeds_give_independent_family_members():
    a = make_zoo_device("ring", 8, seed=0)
    b = make_zoo_device("ring", 8, seed=1)
    assert a.coupling.edges == b.coupling.edges  # same topology...
    assert a.true_calibration.two_qubit_fidelity != (
        b.true_calibration.two_qubit_fidelity
    )  # ...fresh calibration draw
    assert a.name != b.name


def test_random_family_reseeds_topology_too():
    a = make_zoo_device("random", 12, seed=0)
    b = make_zoo_device("random", 12, seed=1)
    assert a.coupling.edges != b.coupling.edges


def test_size_and_tier_fold_into_the_calibration_stream():
    small = make_zoo_device("line", 6, seed=0)
    clean = make_zoo_device("line", 6, tier="clean", seed=0)
    assert small.true_calibration.one_qubit_fidelity != (
        clean.true_calibration.one_qubit_fidelity
    )


def test_tier_ordering_clean_beats_noisy():
    clean = make_zoo_device("grid", 12, tier="clean", seed=0)
    noisy = make_zoo_device("grid", 12, tier="noisy", seed=0)
    assert (
        clean.true_calibration.mean_two_qubit_fidelity()
        > noisy.true_calibration.mean_two_qubit_fidelity()
    )
    assert clean.noise.crosstalk_two_two < noisy.noise.crosstalk_two_two


def test_drift_scale_zero_reports_truth():
    fresh = make_zoo_device("ring", 8, seed=0, drift_scale=0.0)
    one_q_true = fresh.true_calibration.one_qubit_fidelity
    one_q_reported = fresh.reported_calibration.one_qubit_fidelity
    assert np.allclose(
        [one_q_true[q] for q in sorted(one_q_true)],
        [one_q_reported[q] for q in sorted(one_q_reported)],
    )


def test_drift_scale_widens_staleness():
    calm = make_zoo_device("ring", 8, seed=0, drift_scale=0.2)
    wild = make_zoo_device("ring", 8, seed=0, drift_scale=3.0)

    def staleness(device):
        true_t1 = device.true_calibration.t1
        reported_t1 = device.reported_calibration.t1
        return float(np.mean([
            abs(np.log(reported_t1[q] / true_t1[q])) for q in true_t1
        ]))

    assert staleness(wild) > staleness(calm)


def test_spec_parsing_defaults_and_round_trip():
    assert device_from_spec("zoo:ring").name == (
        f"zoo-ring{DEFAULT_SIZES['ring']}-typical-s0"
    )
    full = device_from_spec("zoo:heavy_hex:16:noisy:7")
    assert full.name == "zoo-heavy_hex16-noisy-s7"
    assert device_fingerprint(full) == device_fingerprint(
        make_zoo_device("heavy_hex", 16, tier="noisy", seed=7)
    )


def test_device_name_reflects_actual_size():
    # A 20-qubit heavy-hex request quantizes down to 16.
    device = make_zoo_device("heavy_hex", 20)
    assert device.num_qubits == 16
    assert "heavy_hex16" in device.name


def test_quantized_sizes_collapse_to_one_device():
    """Specs that quantize to the same lattice are the *same* device."""
    assert device_fingerprint(make_zoo_device("heavy_hex", 17)) == (
        device_fingerprint(make_zoo_device("heavy_hex", 16))
    )


def test_summary_enumerates_families_and_tiers():
    text = zoo_summary()
    for family in zoo_families():
        assert family in text
    for tier in NOISE_TIERS:
        assert tier in text


@pytest.mark.parametrize("family", zoo_families())
def test_all_families_execute_a_circuit(family):
    """Every zoo device runs a compiled GHZ end to end on the emulator."""
    from repro.bench.algorithms import ghz
    from repro.compiler import compile_circuit
    from repro.simulation import execute_and_label

    device = make_zoo_device(family, tier="clean", seed=0)
    circuit = ghz(3)
    result = compile_circuit(circuit, device, optimization_level=2, seed=0)
    distance, execution = execute_and_label(
        result.circuit, device, shots=200, seed=0
    )
    assert 0.0 <= distance <= 1.0
    assert sum(execution.counts.values()) == 200
