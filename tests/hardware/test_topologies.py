"""Unit tests for the topology-zoo constructors."""

import pytest

from repro.hardware.topologies import (
    TOPOLOGIES,
    build_topology,
    heavy_hex_qubits,
    ladder_map,
    random_coupling_map,
)


def test_registry_has_at_least_five_families():
    assert len(TOPOLOGIES) >= 5
    for expected in ("line", "ring", "ladder", "star", "heavy_hex", "random"):
        assert expected in TOPOLOGIES


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_every_family_builds_validated_maps(name):
    family = TOPOLOGIES[name]
    for size in (family.min_qubits, family.min_qubits + 6):
        if name == "grid" and size == family.min_qubits + 6:
            size += 2  # 10 = 2x5; min+6 would be prime
        coupling = family.build(size, seed=1)
        assert coupling.is_connected()
        assert coupling.num_qubits >= 1
        if family.exact_size:
            assert coupling.num_qubits == size
        else:
            assert coupling.num_qubits <= size


def test_ladder_structure():
    cm = ladder_map(8)
    # Two 4-chains plus 4 rungs.
    assert cm.num_qubits == 8
    assert len(cm.edges) == 3 + 3 + 4
    assert cm.has_edge(0, 4) and cm.has_edge(3, 7)
    assert cm.has_edge(0, 1) and cm.has_edge(4, 5)
    assert max(cm.degree(q) for q in range(8)) == 3


def test_random_map_is_seed_deterministic_and_bounded():
    a = random_coupling_map(14, degree=3, seed=11)
    b = random_coupling_map(14, degree=3, seed=11)
    c = random_coupling_map(14, degree=3, seed=12)
    assert a.edges == b.edges
    assert a.edges != c.edges
    assert a.is_connected()
    assert max(a.degree(q) for q in range(14)) <= 3


def test_random_map_higher_degree_bound_gives_denser_graphs():
    sparse = random_coupling_map(16, degree=3, seed=0)
    dense = random_coupling_map(16, degree=5, seed=0)
    assert len(dense.edges) > len(sparse.edges)
    assert max(dense.degree(q) for q in range(16)) <= 5


def test_heavy_hex_qubits_matches_lattice():
    from repro.hardware.coupling import heavy_hex_map

    for distance in (1, 2, 3):
        assert heavy_hex_qubits(distance) == heavy_hex_map(distance).num_qubits


def test_heavy_hex_build_picks_largest_fit():
    assert build_topology("heavy_hex", 6).num_qubits == 6
    assert build_topology("heavy_hex", 15).num_qubits == 6
    assert build_topology("heavy_hex", 16).num_qubits == 16
    assert build_topology("heavy_hex", 29).num_qubits == 16
    assert build_topology("heavy_hex", 30).num_qubits == 30


def test_grid_build_prefers_square():
    assert build_topology("grid", 12).num_qubits == 12
    cm = build_topology("grid", 16)
    # 4x4: every qubit has degree 2, 3, or 4; corners exactly 2.
    degrees = sorted(cm.degree(q) for q in range(16))
    assert degrees[:4] == [2, 2, 2, 2]
    assert degrees[-4:] == [4, 4, 4, 4]
