"""Unit tests for calibration data and the drift (staleness) model."""

import numpy as np
import pytest

from repro.hardware.calibration import (
    Calibration,
    GateDurations,
    drift_calibration,
    drift_walk,
    random_calibration,
)
from repro.hardware.coupling import grid_map


@pytest.fixture
def calibration():
    return random_calibration(grid_map(2, 3), np.random.default_rng(0))


def test_random_calibration_covers_all_qubits_and_edges(calibration):
    coupling = grid_map(2, 3)
    assert set(calibration.one_qubit_fidelity) == set(range(6))
    assert set(calibration.readout_fidelity) == set(range(6))
    assert set(calibration.two_qubit_fidelity) == set(coupling.edges)
    assert set(calibration.t1) == set(range(6))


def test_random_calibration_ranges(calibration):
    for value in calibration.one_qubit_fidelity.values():
        assert 0.99 < value <= 1.0
    for value in calibration.two_qubit_fidelity.values():
        assert 0.9 < value < 1.0
    for q in range(6):
        assert calibration.t2[q] <= 2.0 * calibration.t1[q] + 1e-9


def test_edge_fidelity_symmetric_lookup(calibration):
    assert calibration.edge_fidelity(0, 1) == calibration.edge_fidelity(1, 0)


def test_min_relaxation(calibration):
    q = 0
    assert calibration.min_relaxation(q) == min(
        calibration.t1[q], calibration.t2[q]
    )


def test_validation_rejects_bad_fidelity():
    with pytest.raises(ValueError):
        Calibration(
            one_qubit_fidelity={0: 1.5},
            two_qubit_fidelity={},
            readout_fidelity={0: 0.9},
            t1={0: 1000.0},
            t2={0: 1000.0},
        )


def test_validation_rejects_unsorted_edge():
    with pytest.raises(ValueError, match="sorted"):
        Calibration(
            one_qubit_fidelity={0: 0.99, 1: 0.99},
            two_qubit_fidelity={(1, 0): 0.98},
            readout_fidelity={0: 0.9, 1: 0.9},
            t1={0: 1000.0, 1: 1000.0},
            t2={0: 900.0, 1: 900.0},
        )


def test_validation_rejects_nonpositive_t1():
    with pytest.raises(ValueError):
        Calibration(
            one_qubit_fidelity={0: 0.99},
            two_qubit_fidelity={},
            readout_fidelity={0: 0.9},
            t1={0: 0.0},
            t2={0: 100.0},
        )


def test_drift_changes_values(calibration):
    rng = np.random.default_rng(1)
    stale = drift_calibration(calibration, rng)
    assert stale.timestamp == "stale"
    changed_t1 = sum(
        1 for q in calibration.t1 if abs(stale.t1[q] - calibration.t1[q]) > 1e-9
    )
    assert changed_t1 == len(calibration.t1)
    # Fidelities stay in (0.5, 1].
    for value in stale.two_qubit_fidelity.values():
        assert 0.5 <= value <= 1.0


def test_drift_zero_magnitude_is_identity(calibration):
    rng = np.random.default_rng(2)
    stale = drift_calibration(
        calibration, rng, fidelity_drift=0.0, relaxation_drift=0.0
    )
    for q, value in calibration.one_qubit_fidelity.items():
        assert stale.one_qubit_fidelity[q] == pytest.approx(value)
    for q, value in calibration.t1.items():
        assert stale.t1[q] == pytest.approx(value)


def test_drift_relaxation_stronger_than_fidelity(calibration):
    """Relative T1 drift should exceed relative infidelity drift on average."""
    rng = np.random.default_rng(3)
    rel_t1, rel_fid = [], []
    for _ in range(30):
        stale = drift_calibration(
            calibration, rng, fidelity_drift=0.2, relaxation_drift=0.8
        )
        for q in calibration.t1:
            rel_t1.append(abs(np.log(stale.t1[q] / calibration.t1[q])))
        for e, value in calibration.two_qubit_fidelity.items():
            rel_fid.append(
                abs(np.log((1 - stale.two_qubit_fidelity[e]) / (1 - value)))
            )
    assert np.mean(rel_t1) > 2 * np.mean(rel_fid)


def test_drift_rejects_negative_magnitude(calibration):
    with pytest.raises(ValueError):
        drift_calibration(
            calibration, np.random.default_rng(0), fidelity_drift=-1.0
        )


def test_durations_lookup():
    durations = GateDurations(one_qubit=40, two_qubit=120, readout=800)
    assert durations.of(1, is_measure=False) == 40
    assert durations.of(2, is_measure=False) == 120
    assert durations.of(1, is_measure=True) == 800


def test_copy_is_deep(calibration):
    clone = calibration.copy(timestamp="copy")
    clone.t1[0] = 1.0
    assert calibration.t1[0] != 1.0
    assert clone.timestamp == "copy"


def test_mean_helpers(calibration):
    assert 0.9 < calibration.mean_two_qubit_fidelity() < 1.0
    assert 0.9 < calibration.mean_readout_fidelity() < 1.0


def test_drift_moves_readout_fidelity(calibration):
    """Regression: readout fidelity is part of the drift model (the
    executor samples measurement errors from it)."""
    stale = drift_calibration(
        calibration, np.random.default_rng(7), fidelity_drift=0.3
    )
    changed = sum(
        1
        for q, value in calibration.readout_fidelity.items()
        if abs(stale.readout_fidelity[q] - value) > 1e-9
    )
    assert changed == len(calibration.readout_fidelity)


def test_drift_keeps_durations_by_default(calibration):
    """Deliberate exclusion: durations are control-stack settings, not
    measured quantities — they only move with explicit duration_drift."""
    stale = drift_calibration(calibration, np.random.default_rng(8))
    assert stale.durations == calibration.durations


def test_duration_drift_moves_all_three_durations(calibration):
    stale = drift_calibration(
        calibration, np.random.default_rng(9), duration_drift=0.3
    )
    for field in ("one_qubit", "two_qubit", "readout"):
        before = getattr(calibration.durations, field)
        after = getattr(stale.durations, field)
        assert after != before
        assert after > 0


def test_duration_drift_appends_to_the_rng_stream(calibration):
    """Same seed with and without duration drift: the duration draws sit
    after the fidelity/relaxation draws, so every other field is
    byte-identical (golden compile outputs must not move)."""
    plain = drift_calibration(calibration, np.random.default_rng(10))
    extended = drift_calibration(
        calibration, np.random.default_rng(10), duration_drift=0.5
    )
    assert extended.one_qubit_fidelity == plain.one_qubit_fidelity
    assert extended.two_qubit_fidelity == plain.two_qubit_fidelity
    assert extended.readout_fidelity == plain.readout_fidelity
    assert extended.t1 == plain.t1
    assert extended.t2 == plain.t2
    assert extended.durations != plain.durations


def test_drift_rejects_negative_duration_drift(calibration):
    with pytest.raises(ValueError):
        drift_calibration(
            calibration, np.random.default_rng(0), duration_drift=-0.1
        )


def test_drift_walk_matches_iterated_single_steps(calibration):
    walk = drift_walk(
        calibration, np.random.default_rng(11), 3,
        fidelity_drift=0.2, relaxation_drift=0.4,
    )
    assert len(walk) == 3
    assert [snapshot.timestamp for snapshot in walk] == [
        "drift-1", "drift-2", "drift-3",
    ]
    manual = calibration
    rng = np.random.default_rng(11)
    for snapshot in walk:
        manual = drift_calibration(
            manual, rng, fidelity_drift=0.2, relaxation_drift=0.4
        )
        assert manual.t1 == snapshot.t1
        assert manual.two_qubit_fidelity == snapshot.two_qubit_fidelity


def test_drift_walk_edge_cases(calibration):
    assert drift_walk(calibration, np.random.default_rng(0), 0) == []
    with pytest.raises(ValueError):
        drift_walk(calibration, np.random.default_rng(0), -1)
