"""Unit tests for coupling maps."""

import numpy as np
import pytest

from repro.hardware.coupling import (
    CouplingMap,
    full_map,
    grid_map,
    grid_positions,
    heavy_hex_map,
    line_map,
    ring_map,
    star_map,
)


def test_line_map():
    cm = line_map(4)
    assert cm.edges == [(0, 1), (1, 2), (2, 3)]
    assert cm.distance(0, 3) == 3
    assert cm.is_connected()


def test_ring_map():
    cm = ring_map(6)
    assert len(cm.edges) == 6
    assert cm.distance(0, 3) == 3
    assert cm.distance(0, 5) == 1


def test_grid_map_structure():
    cm = grid_map(4, 5)
    assert cm.num_qubits == 20
    # Interior qubit has 4 neighbours, corner has 2.
    assert cm.degree(6) == 4
    assert cm.degree(0) == 2
    assert len(cm.edges) == 31  # 4*4 + 3*5
    assert cm.is_connected()


def test_grid_positions():
    pos = grid_positions(2, 3)
    assert pos[0] == (0, 0)
    assert pos[5] == (1, 2)


def test_star_and_full():
    star = star_map(5)
    assert star.degree(0) == 4
    assert star.distance(1, 2) == 2
    full = full_map(4)
    assert len(full.edges) == 6
    assert full.distance(0, 3) == 1


def test_heavy_hex_is_connected():
    cm = heavy_hex_map(2)
    assert cm.is_connected()
    assert max(cm.degree(q) for q in range(cm.num_qubits)) <= 3


def test_distance_matrix_symmetry():
    cm = grid_map(3, 3)
    dist = cm.distance_matrix()
    assert np.allclose(dist, dist.T)
    assert np.all(np.diag(dist) == 0)


def test_shortest_path_endpoints():
    cm = grid_map(3, 3)
    path = cm.shortest_path(0, 8)
    assert path[0] == 0
    assert path[-1] == 8
    assert len(path) == cm.distance(0, 8) + 1
    for a, b in zip(path, path[1:]):
        assert cm.has_edge(a, b)


def test_adjacent_edges():
    cm = grid_map(2, 3)
    # Edge (0,1); adjacent edges share a qubit with it.
    adjacent = cm.adjacent_edges((0, 1))
    assert (0, 1) not in adjacent
    assert all(0 in e or 1 in e for e in adjacent)
    assert (1, 2) in adjacent


def test_neighbors_sorted():
    cm = grid_map(3, 3)
    assert cm.neighbors(4) == [1, 3, 5, 7]


def test_subgraph_connectivity():
    cm = line_map(5)
    assert cm.subgraph_is_connected([1, 2, 3])
    assert not cm.subgraph_is_connected([0, 4])


def test_invalid_edges_rejected():
    with pytest.raises(ValueError, match="out of range"):
        CouplingMap(2, [(0, 5)])
    with pytest.raises(ValueError, match="self-loop"):
        CouplingMap(2, [(1, 1)])


def test_disconnected_distance_raises():
    cm = CouplingMap(4, [(0, 1), (2, 3)])
    assert not cm.is_connected()
    with pytest.raises(ValueError, match="disconnected"):
        cm.distance(0, 3)


def test_pickle_preserves_neighbor_insertion_order():
    """Adjacency iteration order is load-bearing (BFS and shortest-path
    tie-breaking follow it), so pickling must not normalise it."""
    import pickle

    edges = [(4, 2), (0, 4), (3, 0), (2, 0), (1, 3), (4, 1)]
    cm = CouplingMap(5, edges)
    clone = pickle.loads(pickle.dumps(cm))
    assert clone.edges == cm.edges
    for qubit in range(5):
        assert clone.neighbors(qubit) == cm.neighbors(qubit)
    for start in range(5):
        assert clone.bfs_order(start) == cm.bfs_order(start)
    for a in range(5):
        for b in range(5):
            assert clone.shortest_path(a, b) == cm.shortest_path(a, b)
    assert clone.fingerprint() == cm.fingerprint()


def test_pickle_carries_routing_tables():
    cm = grid_map(3, 3)
    tables = cm.routing_tables()
    import pickle

    clone = pickle.loads(pickle.dumps(cm))
    cloned_tables = clone.routing_tables()
    assert np.array_equal(cloned_tables.distance, tables.distance)
    assert np.array_equal(cloned_tables.adjacency, tables.adjacency)


def test_routing_tables_array_round_trip():
    from repro.hardware.coupling import RoutingTables

    tables = heavy_hex_map(3).routing_tables()
    rebuilt = RoutingTables.from_arrays(tables.to_arrays())
    assert np.array_equal(rebuilt.distance, tables.distance)
    assert np.array_equal(rebuilt.adjacency, tables.adjacency)
    assert rebuilt.neighbors == tables.neighbors
