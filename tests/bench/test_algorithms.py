"""Unit tests for benchmark circuit generators."""


import pytest

from repro.bench.algorithms import ALGORITHMS
from repro.simulation.statevector import ideal_distribution


@pytest.mark.parametrize("family", sorted(ALGORITHMS))
def test_generator_produces_measured_circuit(family):
    generator, minimum, maximum = ALGORITHMS[family]
    qc = generator(minimum)
    assert qc.num_qubits == minimum
    assert len(qc.measured_qubits()) >= 1
    assert qc.size() > 0


@pytest.mark.parametrize("family", sorted(ALGORITHMS))
def test_generator_deterministic(family):
    generator, minimum, _ = ALGORITHMS[family]
    width = minimum + 2
    assert generator(width).instructions == generator(width).instructions


@pytest.mark.parametrize("family", sorted(ALGORITHMS))
def test_distribution_normalized(family):
    generator, minimum, _ = ALGORITHMS[family]
    dist = ideal_distribution(generator(min(minimum + 2, 6)))
    assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("family", sorted(ALGORITHMS))
def test_minimum_width_enforced(family):
    generator, minimum, _ = ALGORITHMS[family]
    with pytest.raises(ValueError):
        generator(minimum - 1)


def test_ghz_distribution():
    dist = ideal_distribution(ALGORITHMS["ghz"][0](5))
    assert set(dist) == {"00000", "11111"}
    assert dist["00000"] == pytest.approx(0.5, abs=1e-9)


def test_wstate_distribution():
    n = 5
    dist = ideal_distribution(ALGORITHMS["wstate"][0](n))
    assert len(dist) == n
    for key, prob in dist.items():
        assert key.count("1") == 1
        assert prob == pytest.approx(1.0 / n, abs=1e-9)


def test_bv_recovers_secret_deterministically():
    dist = ideal_distribution(ALGORITHMS["bv"][0](6))
    top = max(dist, key=dist.get)
    assert dist[top] > 0.999
    assert "1" in top  # non-trivial secret


def test_dj_balanced_oracle_never_returns_zero():
    dist = ideal_distribution(ALGORITHMS["dj"][0](6))
    top = max(dist, key=dist.get)
    assert dist[top] > 0.999
    assert top != "0" * len(top)


def test_qpeexact_single_peak():
    dist = ideal_distribution(ALGORITHMS["qpeexact"][0](6))
    assert max(dist.values()) > 0.999


def test_qpeinexact_spread():
    dist = ideal_distribution(ALGORITHMS["qpeinexact"][0](6))
    assert max(dist.values()) < 0.9
    assert len(dist) > 2


def test_grover_amplifies_target():
    dist = ideal_distribution(ALGORITHMS["grover"][0](5))
    # 4 search qubits, up to 3 iterations: strong amplification.
    assert max(dist.values()) > 0.5


def test_qft_on_zero_gives_uniform():
    n = 4
    dist = ideal_distribution(ALGORITHMS["qft"][0](n))
    assert len(dist) == 2 ** n
    for prob in dist.values():
        assert prob == pytest.approx(1.0 / 2 ** n, abs=1e-9)


def test_qaoa_valid_two_layer_structure():
    qc = ALGORITHMS["qaoa"][0](6)
    ops = qc.count_ops()
    assert ops["h"] == 6
    assert ops["rzz"] >= 12  # two layers over >= 6 edges
    assert ops["rx"] == 12


def test_hamsim_gate_structure():
    qc = ALGORITHMS["hamsim"][0](4)
    ops = qc.count_ops()
    assert ops["rxx"] == ops["ryy"] == ops["rzz"]


def test_family_caps_documented():
    assert ALGORITHMS["grover"][2] == 8
    assert ALGORITHMS["qwalk"][2] == 10
    assert ALGORITHMS["ghz"][2] == 20


def test_qwalk_walks():
    dist = ideal_distribution(ALGORITHMS["qwalk"][0](4))
    # After 3 steps the position register is spread over several values.
    assert len(dist) >= 3
