"""Unit tests for the CI perf-regression comparator (benchmarks/compare.py)."""

import importlib.util
import json
import pathlib

import pytest

_COMPARE_PATH = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "compare.py"
)
_spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE_PATH)
compare_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_mod)


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def test_load_means_simplified_mapping(tmp_path):
    path = _write(tmp_path, "baseline.json", {"a": 1.5, "b": 0.25})
    assert compare_mod.load_means(path) == {"a": 1.5, "b": 0.25}


def test_load_means_pytest_benchmark_export(tmp_path):
    path = _write(tmp_path, "fresh.json", {
        "benchmarks": [
            {"name": "test_perf_a", "stats": {"mean": 0.125, "stddev": 0.01}},
            {"name": "test_perf_b", "stats": {"mean": 2.0}},
        ],
    })
    assert compare_mod.load_means(path) == {
        "test_perf_a": 0.125, "test_perf_b": 2.0,
    }


def test_load_means_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        compare_mod.load_means(path)


def test_compare_within_threshold_passes():
    regressions, missing, _ = compare_mod.compare(
        {"a": 1.0, "b": 2.0}, {"a": 1.29, "b": 1.5}, threshold=0.30
    )
    assert regressions == []
    assert missing == []


def test_compare_flags_regression_beyond_threshold():
    regressions, missing, lines = compare_mod.compare(
        {"a": 1.0, "b": 2.0}, {"a": 1.31, "b": 2.0}, threshold=0.30
    )
    assert regressions == ["a"]
    assert missing == []
    assert any("SLOWER" in line for line in lines)


def test_compare_ignores_added_benchmarks():
    regressions, missing, lines = compare_mod.compare(
        {"kept": 1.0}, {"kept": 1.0, "new": 9.9}, threshold=0.30
    )
    assert regressions == []
    assert missing == []
    assert any("[new]" in line for line in lines)


def test_compare_reports_missing_benchmarks():
    """A baseline bench absent from the fresh run is surfaced as missing —
    a deleted/skipped bench must not silently pass the gate."""
    regressions, missing, lines = compare_mod.compare(
        {"gone": 1.0, "kept": 1.0}, {"kept": 1.0}, threshold=0.30
    )
    assert regressions == []
    assert missing == ["gone"]
    assert any("[MISSING]" in line for line in lines)


def test_main_fails_on_missing_benchmark(tmp_path, capsys):
    baseline = _write(tmp_path, "baseline.json", {"a": 1.0, "b": 1.0})
    fresh = _write(tmp_path, "fresh.json", {"a": 1.0})
    assert compare_mod.main([str(baseline), str(fresh)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "missing" in out
    # The escape hatch turns the failure into a warning.
    assert compare_mod.main(
        [str(baseline), str(fresh), "--allow-missing"]
    ) == 0
    out = capsys.readouterr().out
    assert "WARNING" in out


def test_main_fails_on_both_missing_and_regressed(tmp_path, capsys):
    baseline = _write(tmp_path, "baseline.json", {"a": 1.0, "b": 1.0})
    fresh = _write(tmp_path, "fresh.json", {"a": 9.0})
    assert compare_mod.main([str(baseline), str(fresh)]) == 1
    # --allow-missing must not excuse the genuine regression.
    assert compare_mod.main(
        [str(baseline), str(fresh), "--allow-missing"]
    ) == 1


def test_main_exit_codes(tmp_path, capsys):
    baseline = _write(tmp_path, "baseline.json", {"a": 1.0})
    ok = _write(tmp_path, "ok.json", {"a": 1.1})
    slow = _write(tmp_path, "slow.json", {"a": 2.0})
    assert compare_mod.main([str(baseline), str(ok)]) == 0
    assert compare_mod.main([str(baseline), str(slow)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    # A looser threshold lets the same result pass.
    assert compare_mod.main(
        [str(baseline), str(slow), "--threshold", "1.5"]
    ) == 0


def test_main_update_rewrites_baseline(tmp_path):
    baseline = tmp_path / "baseline.json"
    fresh = _write(tmp_path, "fresh.json", {
        "benchmarks": [{"name": "a", "stats": {"mean": 0.5}}],
    })
    assert compare_mod.main([str(baseline), str(fresh), "--update"]) == 0
    assert json.loads(baseline.read_text()) == {"a": 0.5}
    # And the rewritten baseline round-trips through a comparison.
    assert compare_mod.main([str(baseline), str(fresh)]) == 0
