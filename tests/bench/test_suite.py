"""Unit tests for benchmark suite construction."""

import pytest

from repro.bench.algorithms import ALGORITHMS
from repro.bench.suite import (
    DEPTH_LIMIT,
    build_suite,
    filter_by_depth,
    suite_summary,
)


def test_default_suite_composition():
    suite = build_suite()
    assert len(suite) > 250
    families = {entry.algorithm for entry in suite}
    assert families == set(ALGORITHMS)
    widths = {entry.num_qubits for entry in suite}
    assert min(widths) == 2
    assert max(widths) == 20


def test_respects_family_caps():
    suite = build_suite()
    grover_widths = [e.num_qubits for e in suite if e.algorithm == "grover"]
    assert max(grover_widths) == 8


def test_qubit_range_selection():
    suite = build_suite(min_qubits=4, max_qubits=6)
    assert all(4 <= entry.num_qubits <= 6 for entry in suite)


def test_step():
    suite = build_suite(min_qubits=2, max_qubits=10, step=4)
    widths = sorted({e.num_qubits for e in suite if e.algorithm == "ghz"})
    assert widths == [2, 6, 10]


def test_algorithm_subset():
    suite = build_suite(algorithms=["ghz", "qft"], max_qubits=5)
    assert {entry.algorithm for entry in suite} == {"ghz", "qft"}


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError, match="unknown"):
        build_suite(algorithms=["bogus"])


def test_invalid_ranges_rejected():
    with pytest.raises(ValueError):
        build_suite(min_qubits=1)
    with pytest.raises(ValueError):
        build_suite(min_qubits=5, max_qubits=3)


def test_entry_names():
    suite = build_suite(algorithms=["ghz"], max_qubits=3)
    assert suite[0].name == "ghz_2"
    assert suite[1].name == "ghz_3"


def test_filter_by_depth():
    suite = build_suite(algorithms=["ghz"], max_qubits=5)
    depths = {"ghz_2": 10, "ghz_3": 999, "ghz_4": 1000, "ghz_5": 5000}
    kept = filter_by_depth(suite, depths)
    assert [e.name for e in kept] == ["ghz_2", "ghz_3"]
    assert DEPTH_LIMIT == 1000


def test_filter_skips_missing_entries():
    suite = build_suite(algorithms=["ghz"], max_qubits=3)
    kept = filter_by_depth(suite, {"ghz_2": 5})
    assert [e.name for e in kept] == ["ghz_2"]


def test_summary_format():
    suite = build_suite(algorithms=["ghz", "qft"], max_qubits=4)
    text = suite_summary(suite)
    assert "ghz" in text
    assert "qft" in text
    assert "total" in text


def test_circuits_are_fresh_instances():
    a = build_suite(algorithms=["ghz"], max_qubits=3)
    b = build_suite(algorithms=["ghz"], max_qubits=3)
    assert a[0].circuit is not b[0].circuit
    assert a[0].circuit.instructions == b[0].circuit.instructions
