"""Unit tests for the PST (mirror-circuit) extension."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random import random_circuit
from repro.hardware import make_q20a
from repro.predictor.pst import mirror_circuit, pst, pst_label
from repro.simulation.statevector import ideal_distribution


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def test_mirror_ideal_output_is_all_zeros():
    qc = random_circuit(4, 8, seed=1, measure=True)
    mirrored = mirror_circuit(qc)
    dist = ideal_distribution(mirrored)
    assert dist == {"0000": pytest.approx(1.0)}


def test_mirror_has_double_gates():
    qc = random_circuit(3, 6, seed=2)
    mirrored = mirror_circuit(qc)
    gates = sum(1 for ins in mirrored.instructions if ins.is_unitary)
    assert gates == 2 * qc.size()
    assert len(mirrored.measured_qubits()) == 3


def test_mirror_strips_existing_measures():
    qc = QuantumCircuit(2, 2)
    qc.h(0).cx(0, 1)
    qc.measure_all()
    mirrored = mirror_circuit(qc)
    measures = [ins for ins in mirrored.instructions if ins.name == "measure"]
    assert len(measures) == 2


def test_pst_in_unit_interval(device):
    qc = random_circuit(4, 5, seed=3, measure=True)
    value, executed = pst(qc, device, shots=500, seed=1)
    assert 0.0 <= value <= 1.0
    device.validate_circuit(executed)


def test_pst_decreases_with_depth(device):
    shallow = random_circuit(4, 2, seed=4, measure=True)
    deep = random_circuit(4, 30, seed=4, measure=True)
    shallow_pst, _ = pst(shallow, device, shots=2000, seed=2)
    deep_pst, _ = pst(deep, device, shots=2000, seed=2)
    assert deep_pst < shallow_pst


def test_pst_label_monotone_transform(device):
    qc = random_circuit(3, 4, seed=5, measure=True)
    value, _ = pst(qc, device, shots=500, seed=3)
    label = pst_label(qc, device, shots=500, seed=3)
    assert label == pytest.approx((1.0 - value) ** 0.5)


def test_pst_correlates_with_hellinger_label(device):
    """PST-derived labels must rank circuits like Hellinger labels do.

    Uses structured (GHZ-chain) circuits whose peaked ideal distribution
    makes the Hellinger label grow robustly with size; for small random
    circuits both labels saturate near the uniform-distribution floor and
    the ordering is shot-noise.
    """
    from repro.compiler import compile_circuit
    from repro.simulation.executor import execute_and_label

    hellinger, pst_vals = [], []
    for n in (3, 10):
        qc = QuantumCircuit(n)
        qc.h(0)
        for i in range(n - 1):
            qc.cx(i, i + 1)
        qc.measure_all()
        compiled = compile_circuit(qc, device, optimization_level=2, seed=1)
        d, _ = execute_and_label(compiled.circuit, device, shots=2000, seed=4)
        hellinger.append(d)
        pst_vals.append(pst_label(qc, device, shots=2000, seed=4))
    assert hellinger[1] > hellinger[0]
    assert pst_vals[1] > pst_vals[0]
