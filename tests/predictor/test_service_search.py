"""FomService with ``optimization_level="search"``: the served search path."""

import numpy as np
import pytest

from repro.circuits.random import random_circuit
from repro.compiler import reset_search_stats, search_stats
from repro.evaluation.artifacts import ArtifactStore
from repro.ml.forest import RandomForestRegressor
from repro.predictor.service import FomService


def tiny_estimator(seed: int = 0):
    rng = np.random.default_rng(seed)
    forest = RandomForestRegressor(
        n_estimators=5, random_state=seed, max_features="sqrt"
    )
    forest.fit(rng.uniform(size=(40, 30)), rng.uniform(size=40))
    return forest


@pytest.fixture(scope="module")
def circuits():
    return [
        random_circuit(3 + index % 2, 6, seed=index, measure=True)
        for index in range(5)
    ]


def make_service(tmp_path, **kwargs):
    defaults = dict(
        optimization_level="search", search_store=str(tmp_path),
        beam_width=2, generations=1, chunk_size=2,
    )
    defaults.update(kwargs)
    return FomService(tiny_estimator(), "q20a", **defaults)


def test_search_predictions_chunk_invariant(tmp_path, circuits):
    service = make_service(tmp_path / "a")
    small = service.predict(circuits, workers_mode="thread", chunk_size=2)
    service_big = make_service(tmp_path / "b", chunk_size=128)
    big = service_big.predict(circuits, workers_mode="thread")
    assert np.array_equal(small, big)


def test_search_leaderboard_written_after_call(tmp_path, circuits):
    store = ArtifactStore(tmp_path)
    service = make_service(tmp_path)
    reset_search_stats()
    service.predict(circuits, workers_mode="thread")
    assert store.find("leaderboard")
    assert search_stats()["searches"] == len(circuits)
    # Second call warm-starts every circuit from the recorded winners.
    reset_search_stats()
    service.predict(circuits, workers_mode="thread")
    stats = search_stats()
    assert stats["searches"] == 0
    assert stats["warm_starts"] == len(circuits)


def test_search_without_store(circuits):
    service = FomService(
        tiny_estimator(), "q20a", optimization_level="search",
        beam_width=2, generations=1,
    )
    predictions = service.predict(circuits[:3], workers_mode="thread")
    assert predictions.shape == (3,)


def test_search_compile_only_tags_results(tmp_path, circuits):
    service = make_service(tmp_path)
    results = service.compile_only(circuits[:3], workers_mode="thread")
    assert all(
        result.circuit.metadata["optimization_level"] == "search"
        for result in results
    )
    assert ArtifactStore(tmp_path).find("leaderboard")


def test_search_foms_panel(tmp_path, circuits):
    from repro.fom.metrics import FOM_ORDER, PROPOSED_LABEL

    service = make_service(tmp_path)
    panel = service.score_established_foms(
        circuits[:3], workers_mode="thread"
    )
    for name in (*FOM_ORDER, PROPOSED_LABEL):
        assert panel[name].shape == (3,)


def test_int_level_ignores_search_knobs(circuits):
    service = FomService(
        tiny_estimator(), "q20a", optimization_level=1,
        search_store="/nonexistent-store", beam_width=2, generations=1,
    )
    predictions = service.predict(circuits[:2], workers_mode="thread")
    assert predictions.shape == (2,)
