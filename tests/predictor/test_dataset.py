"""Unit tests for dataset construction (features + Hellinger labels)."""

import numpy as np
import pytest

from repro.bench.suite import build_suite
from repro.hardware import make_q20a, make_q20b
from repro.predictor.dataset import build_dataset

SMALL_SUITE = build_suite(algorithms=["ghz", "bv", "qft"], max_qubits=5)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        SMALL_SUITE, make_q20a(), shots=500, seed=0, optimization_level=1
    )


def test_dataset_covers_suite(dataset):
    assert len(dataset) == len(SMALL_SUITE)
    assert dataset.device_name == "Q20-A"


def test_feature_matrix_shape(dataset):
    assert dataset.X.shape == (len(SMALL_SUITE), 30)
    assert np.all(np.isfinite(dataset.X))


def test_labels_in_unit_interval(dataset):
    assert np.all(dataset.y >= 0)
    assert np.all(dataset.y <= 1)


def test_fom_values_recorded(dataset):
    for fom in ("Number of gates", "Circuit depth", "Expected fidelity", "ESP"):
        column = dataset.fom_column(fom)
        assert len(column) == len(dataset)
        assert np.all(np.isfinite(column))
    fidelity = dataset.fom_column("Expected fidelity")
    esp = dataset.fom_column("ESP")
    assert np.all(esp <= fidelity + 1e-12)


def test_entries_metadata(dataset):
    entry = dataset.entries[0]
    assert entry.algorithm in ("ghz", "bv", "qft")
    assert entry.compiled_depth > 0
    assert entry.compiled_two_qubit_gates >= 0
    assert 0 <= entry.success_probability <= 1


def test_depth_limit_filters():
    tight = build_dataset(
        SMALL_SUITE, make_q20a(), shots=100, seed=0,
        optimization_level=1, depth_limit=10,
    )
    assert len(tight) < len(SMALL_SUITE)


def test_ideal_cache_shared_across_devices():
    cache = {}
    a = build_dataset(
        SMALL_SUITE, make_q20a(), shots=100, seed=0,
        optimization_level=1, ideal_cache=cache,
    )
    assert len(cache) == len(SMALL_SUITE)
    before = dict(cache)
    b = build_dataset(
        SMALL_SUITE, make_q20b(), shots=100, seed=0,
        optimization_level=1, ideal_cache=cache,
    )
    assert cache.keys() == before.keys()
    assert len(b) == len(SMALL_SUITE)


def test_deterministic_given_seed():
    a = build_dataset(SMALL_SUITE, make_q20a(), shots=100, seed=3,
                      optimization_level=1)
    b = build_dataset(SMALL_SUITE, make_q20a(), shots=100, seed=3,
                      optimization_level=1)
    assert np.array_equal(a.y, b.y)
    assert np.array_equal(a.X, b.X)


def test_labels_differ_between_devices():
    a = build_dataset(SMALL_SUITE, make_q20a(), shots=500, seed=0,
                      optimization_level=1)
    b = build_dataset(SMALL_SUITE, make_q20b(), shots=500, seed=0,
                      optimization_level=1)
    assert not np.allclose(a.y, b.y)
    # The cleaner device should produce smaller distances on average.
    assert b.y.mean() < a.y.mean()
