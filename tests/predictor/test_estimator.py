"""Unit tests for the Hellinger estimator (the proposed figure of merit)."""

import numpy as np
import pytest

from repro.predictor.estimator import (
    DEFAULT_PARAM_GRID,
    HellingerEstimator,
    train_and_evaluate,
)

SMALL_GRID = {"n_estimators": [20], "max_depth": [10], "min_samples_leaf": [1],
              "min_samples_split": [2]}


def _synthetic_labels(n=150, seed=0):
    """Labels resembling Hellinger distances driven by 30 features."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 30))
    raw = 2.2 * X[:, 12] + 1.4 * X[:, 8] + 0.7 * X[:, 17]
    y = 1.0 - np.exp(-raw)
    y += 0.02 * rng.standard_normal(n)
    return X, np.clip(y, 0, 1)


def test_fit_predict_quality():
    X, y = _synthetic_labels()
    estimator = HellingerEstimator(param_grid=SMALL_GRID, seed=0).fit(X, y)
    assert estimator.score(X, y) > 0.9


def test_unfitted_raises():
    estimator = HellingerEstimator()
    with pytest.raises(RuntimeError):
        estimator.predict(np.zeros((1, 30)))
    with pytest.raises(RuntimeError):
        _ = estimator.feature_importances_


def test_grid_search_records_best_params():
    X, y = _synthetic_labels(80)
    grid = {"n_estimators": [5, 15], "max_depth": [2, 6],
            "min_samples_leaf": [1], "min_samples_split": [2]}
    estimator = HellingerEstimator(param_grid=grid, seed=1).fit(X, y)
    assert set(estimator.best_params_) == set(grid)
    assert np.isfinite(estimator.cv_score_)


def test_feature_importances_highlight_signal():
    X, y = _synthetic_labels(300, seed=2)
    estimator = HellingerEstimator(param_grid=SMALL_GRID, seed=2).fit(X, y)
    top = set(np.argsort(estimator.feature_importances_)[-3:])
    assert 12 in top


def test_default_grid_matches_paper_hyperparameters():
    assert "n_estimators" in DEFAULT_PARAM_GRID
    assert "max_depth" in DEFAULT_PARAM_GRID
    assert "min_samples_leaf" in DEFAULT_PARAM_GRID
    assert "min_samples_split" in DEFAULT_PARAM_GRID


def test_train_and_evaluate_protocol():
    X, y = _synthetic_labels(200, seed=3)
    report = train_and_evaluate(
        X, y, device_name="TEST", test_size=0.2, n_splits=3, seed=0,
        param_grid=SMALL_GRID,
    )
    assert report.device_name == "TEST"
    assert len(report.y_test) == 40
    assert len(report.y_test_pred) == 40
    assert report.test_pearson > 0.8
    assert report.train_pearson >= report.test_pearson - 0.1
    assert report.feature_importances.shape == (30,)


def test_train_test_split_is_disjoint():
    X, y = _synthetic_labels(100, seed=4)
    report = train_and_evaluate(
        X, y, test_size=0.2, seed=5, param_grid=SMALL_GRID
    )
    assert len(set(report.test_indices.tolist())) == len(report.test_indices)
    assert len(report.test_indices) == 20


def test_deterministic_given_seed():
    X, y = _synthetic_labels(100, seed=6)
    a = train_and_evaluate(X, y, seed=7, param_grid=SMALL_GRID)
    b = train_and_evaluate(X, y, seed=7, param_grid=SMALL_GRID)
    assert a.test_pearson == pytest.approx(b.test_pearson)
    assert np.array_equal(a.test_indices, b.test_indices)


# ----------------------------------------------------------------------
# Cheap refresh: fine_tune / with_trees
# ----------------------------------------------------------------------


def test_fine_tune_appends_without_touching_original():
    X, y = _synthetic_labels()
    estimator = HellingerEstimator(param_grid=SMALL_GRID, seed=0).fit(X, y)
    before = estimator.predict(X).copy()
    tuned = estimator.fine_tune(X, y, n_trees=5)
    assert tuned is not estimator
    assert tuned.model.n_estimators == estimator.model.n_estimators + 5
    assert tuned.best_params_ == estimator.best_params_
    # The original keeps predicting exactly what it predicted before.
    assert np.array_equal(estimator.predict(X), before)


def test_fine_tune_replace_keeps_forest_size():
    X, y = _synthetic_labels()
    estimator = HellingerEstimator(param_grid=SMALL_GRID, seed=1).fit(X, y)
    tuned = estimator.fine_tune(X, y, n_trees=4, replace=True)
    assert tuned.model.n_estimators == estimator.model.n_estimators


def test_fine_tune_tracks_fresh_labels():
    """Replacing the whole forest with trees fit on shifted labels must
    move predictions toward the new labels."""
    X, y = _synthetic_labels()
    estimator = HellingerEstimator(param_grid=SMALL_GRID, seed=2).fit(X, y)
    shifted = np.clip(y * 0.5, 0, 1)
    tuned = estimator.fine_tune(X, shifted, n_trees=20, replace=True)
    stale_error = np.mean(np.abs(estimator.predict(X) - shifted))
    tuned_error = np.mean(np.abs(tuned.predict(X) - shifted))
    assert tuned_error < stale_error


def test_fine_tune_worker_matrix_bit_identical():
    """Both refresh strategies are worker-invariant: the fine-tuned and
    the retrained estimator each predict bit-identically across
    {thread, process} x {1, 2, 4} workers."""
    X, y = _synthetic_labels(n=120)
    fine_tuned, retrained = None, None
    for mode in ("thread", "process"):
        for workers in (1, 2, 4):
            estimator = HellingerEstimator(
                param_grid=SMALL_GRID, seed=3,
                max_workers=workers, workers_mode=mode,
            ).fit(X, y)
            tuned = estimator.fine_tune(X, y, n_trees=6)
            fresh = HellingerEstimator(
                param_grid=SMALL_GRID, seed=4,
                max_workers=workers, workers_mode=mode,
            ).fit(X, y)
            tuned_pred = tuned.predict(X)
            fresh_pred = fresh.predict(X)
            if fine_tuned is None:
                fine_tuned, retrained = tuned_pred, fresh_pred
            else:
                assert np.array_equal(tuned_pred, fine_tuned), (mode, workers)
                assert np.array_equal(fresh_pred, retrained), (mode, workers)


def test_fine_tune_prefix_matches_smaller_refresh():
    """fine_tune(n) prefixes agree: slicing a big refresh equals asking
    for a small one (the drift study's one-fit sweep relies on this)."""
    X, y = _synthetic_labels()
    estimator = HellingerEstimator(param_grid=SMALL_GRID, seed=5).fit(X, y)
    big = estimator.model.fit_new_trees(X, y, 8, random_state=99)
    small = estimator.fine_tune(X, y, n_trees=3, random_state=99)
    via_prefix = estimator.with_trees(big[:3])
    assert np.array_equal(small.predict(X), via_prefix.predict(X))


def test_fine_tune_requires_fit():
    with pytest.raises(RuntimeError):
        HellingerEstimator(param_grid=SMALL_GRID).fine_tune(
            np.zeros((4, 30)), np.zeros(4), n_trees=2
        )
