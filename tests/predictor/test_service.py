"""FomService: the batched end-to-end inference entry point."""

import numpy as np
import pytest

from repro.circuits.random import random_circuit
from repro.compiler.compile import SEED_STRIDE, compile_circuit
from repro.evaluation.artifacts import ArtifactStore
from repro.evaluation.persistence import save_model
from repro.fom import esp, expected_fidelity, feature_vector
from repro.fom.metrics import circuit_depth, gate_count
from repro.hardware import make_q20a
from repro.ml.forest import RandomForestRegressor
from repro.predictor.estimator import HellingerEstimator
from repro.predictor.service import PROPOSED_LABEL, FomService

TINY_GRID = {
    "n_estimators": [4],
    "max_depth": [3],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}


@pytest.fixture(scope="module")
def estimator():
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(60, 30))
    y = rng.uniform(size=60)
    return HellingerEstimator(param_grid=TINY_GRID, seed=0).fit(X, y)


@pytest.fixture(scope="module")
def device():
    return make_q20a()


@pytest.fixture(scope="module")
def circuits():
    return [
        random_circuit(3 + (seed % 3), 6, seed=seed, measure=True)
        for seed in range(7)
    ]


@pytest.fixture(scope="module")
def service(estimator, device):
    return FomService(estimator, device, optimization_level=2, seed=0)


def manual_predictions(estimator, device, circuits, level=2, seed=0):
    """The seed-era per-circuit loop the batched service must reproduce."""
    out = []
    for index, circuit in enumerate(circuits):
        compiled = compile_circuit(
            circuit, device,
            optimization_level=level, seed=seed + SEED_STRIDE * index,
        ).circuit
        out.append(
            float(estimator.predict(feature_vector(compiled)[None, :])[0])
        )
    return np.array(out)


def test_predict_matches_per_circuit_loop(service, estimator, device, circuits):
    batched = service.predict(circuits)
    assert batched.shape == (len(circuits),)
    assert np.array_equal(
        batched, manual_predictions(estimator, device, circuits)
    )


def test_predict_invariant_to_chunk_size(service, circuits):
    base = service.predict(circuits)
    for chunk_size in (1, 2, 3, len(circuits), 1000):
        assert np.array_equal(
            service.predict(circuits, chunk_size=chunk_size), base
        )


def test_predict_invariant_to_workers(service, circuits):
    base = service.predict(circuits)
    for workers in (1, 2, 4):
        assert np.array_equal(
            service.predict(circuits, max_workers=workers), base
        )


def test_predict_accepts_generators(service, circuits):
    base = service.predict(circuits)
    assert np.array_equal(
        service.predict(iter(circuits), chunk_size=2), base
    )


def test_predict_stream_chunks(service, circuits):
    chunks = list(service.predict_stream(circuits, chunk_size=3))
    assert [len(chunk) for chunk in chunks] == [3, 3, 1]
    assert np.array_equal(np.concatenate(chunks), service.predict(circuits))


def test_predict_empty_input(service):
    assert service.predict([]).shape == (0,)
    panel = service.score_established_foms([])
    assert PROPOSED_LABEL in panel
    assert all(values.shape == (0,) for values in panel.values())


def test_optimization_level_override(service, estimator, device, circuits):
    level3 = service.predict(circuits, optimization_level=3)
    assert np.array_equal(
        level3, manual_predictions(estimator, device, circuits, level=3)
    )


def test_score_established_foms_panel(service, device, circuits):
    panel = service.score_established_foms(circuits, chunk_size=3)
    assert set(panel) == {
        "Number of gates", "Circuit depth", "Expected fidelity", "ESP",
        PROPOSED_LABEL,
    }
    compiled = [result.circuit for result in service.compile_only(circuits)]
    for index, circuit in enumerate(compiled):
        assert panel["Number of gates"][index] == float(gate_count(circuit))
        assert panel["Circuit depth"][index] == float(circuit_depth(circuit))
        assert panel["Expected fidelity"][index] == pytest.approx(
            expected_fidelity(circuit, device), abs=1e-12
        )
        assert panel["ESP"][index] == pytest.approx(
            esp(circuit, device), abs=1e-12
        )
    assert np.array_equal(panel[PROPOSED_LABEL], service.predict(circuits))


def test_predict_at_identity_positions_match_predict(service, circuits):
    predictions, foms = service.predict_at(
        circuits, positions=range(len(circuits))
    )
    assert np.array_equal(predictions, service.predict(circuits))
    assert foms == {}


def test_predict_at_request_local_positions_split_bit_identically(
    service, circuits
):
    """The daemon's coalescing contract: concatenated requests with
    request-local positions split back into the solo answers."""
    requests = [circuits[0:3], circuits[3:5], circuits[5:7]]
    merged = [circuit for request in requests for circuit in request]
    positions = [
        position for request in requests for position in range(len(request))
    ]
    batched, _ = service.predict_at(merged, positions=positions)
    offset = 0
    for request in requests:
        solo = service.predict(request)
        assert np.array_equal(batched[offset:offset + len(request)], solo)
        offset += len(request)


def test_predict_at_foms_panel_and_timings(service, circuits):
    timings = {}
    predictions, foms = service.predict_at(
        circuits[:3], positions=range(3), want_foms=True, timings=timings
    )
    panel = service.score_established_foms(circuits[:3])
    for label, values in foms.items():
        assert np.array_equal(values, panel[label])
    assert PROPOSED_LABEL not in foms  # the panel's estimator row is separate
    assert np.array_equal(predictions, panel[PROPOSED_LABEL])
    assert set(timings) == {"compile_s", "featurize_s", "predict_s"}
    assert all(seconds >= 0.0 for seconds in timings.values())


def test_predict_at_level_override(service, circuits):
    level3, _ = service.predict_at(
        circuits[:3], positions=range(3), optimization_level=3
    )
    assert np.array_equal(
        level3, service.predict(circuits[:3], optimization_level=3)
    )


def test_predict_at_validates_positions(service, circuits):
    with pytest.raises(ValueError, match="positions"):
        service.predict_at(circuits[:2], positions=[0])
    with pytest.raises(ValueError, match="non-negative"):
        service.predict_at(circuits[:2], positions=[0, -1])
    predictions, foms = service.predict_at([], positions=[])
    assert predictions.shape == (0,)
    assert foms == {}


def test_load_from_npz(tmp_path, estimator, device, circuits):
    path = tmp_path / "model.npz"
    save_model(estimator, path)
    service = FomService.load(path, device, optimization_level=2, seed=0)
    reference = FomService(estimator, device, optimization_level=2, seed=0)
    assert np.array_equal(
        service.predict(circuits), reference.predict(circuits)
    )


def test_from_store(tmp_path, estimator, device, circuits):
    store = ArtifactStore(tmp_path)
    store.put("estimator", estimator, "Q20-A", "fp1")
    service = FomService.from_store(
        store, device, optimization_level=2, seed=0
    )
    reference = FomService(estimator, device, optimization_level=2, seed=0)
    assert np.array_equal(
        service.predict(circuits), reference.predict(circuits)
    )
    # A directory path works too.
    FomService.from_store(str(tmp_path), device)


def test_from_store_ambiguity_and_misses(tmp_path, estimator, device):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError, match="no estimator artifact"):
        FomService.from_store(store, device)
    store.put("estimator", estimator, "Q20-A", "fp1")
    store.put("estimator", estimator, "Q20-B", "fp2")
    with pytest.raises(ValueError, match="ambiguous"):
        FomService.from_store(store, device)
    FomService.from_store(store, device, name="Q20-B")
    FomService.from_store(store, device, fingerprint="fp1")
    with pytest.raises(ValueError, match="no estimator artifact"):
        FomService.from_store(store, device, name="Q99")


def test_device_spec_strings(estimator):
    assert FomService(estimator, "q20a").device.name == "Q20-A"
    zoo = FomService(estimator, "zoo:ring:6:typical:1")
    assert zoo.device.num_qubits == 6
    with pytest.raises(ValueError, match="unknown device"):
        FomService(estimator, "not-a-device")


def test_plain_forest_estimators_work(device, circuits):
    """Any .predict(X) model serves — e.g. a bare random forest."""
    rng = np.random.default_rng(1)
    forest = RandomForestRegressor(n_estimators=3, random_state=0)
    forest.fit(rng.uniform(size=(30, 30)), rng.uniform(size=30))
    service = FomService(forest, device, optimization_level=1)
    assert service.predict(circuits[:3]).shape == (3,)


def test_invalid_arguments(estimator, device):
    with pytest.raises(TypeError, match="predict"):
        FomService(object(), device)
    with pytest.raises(ValueError, match="chunk_size"):
        FomService(estimator, device, chunk_size=0)
    service = FomService(estimator, device)
    with pytest.raises(ValueError, match="chunk_size"):
        service.predict([], chunk_size=0)
