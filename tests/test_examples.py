"""Smoke tests: the shipped examples must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, *args: str, timeout: int = 600) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Hellinger distance" in result.stdout
    assert "expected fidelity" in result.stdout


def test_compilation_pipeline_runs():
    result = _run("compilation_pipeline.py")
    assert result.returncode == 0, result.stderr
    assert "Optimization level sweep" in result.stdout
    assert "Pass-by-pass progress" in result.stdout


@pytest.mark.slow
def test_device_comparison_runs():
    result = _run("device_comparison.py", timeout=900)
    assert result.returncode == 0, result.stderr
    assert "Q20-A" in result.stdout
    assert "Q20-B" in result.stdout


@pytest.mark.slow
def test_cross_device_study_runs(tmp_path):
    """The zoo transfer study must run end-to-end and resume from cache."""
    cache = str(tmp_path / "xdev-cache")
    result = _run("cross_device_study.py", "--quick", "--cache-dir", cache,
                  timeout=900)
    assert result.returncode == 0, result.stderr
    assert "Cross-device transfer" in result.stdout
    assert "Transfer gap" in result.stdout
    # One train column + three zoo transfer columns.
    for name in ("zoo-grid12", "zoo-ring12", "zoo-heavy_hex16", "zoo-random12"):
        assert name in result.stdout
    rerun = _run("cross_device_study.py", "--quick", "--cache-dir", cache,
                 timeout=900)
    assert rerun.returncode == 0, rerun.stderr
    assert "Cross-device transfer" in rerun.stdout


@pytest.mark.slow
def test_train_fom_estimator_runs():
    result = _run("train_fom_estimator.py", timeout=1800)
    assert result.returncode == 0, result.stderr
    assert "held-out test Pearson" in result.stdout
    assert "Feature importance" in result.stdout


@pytest.mark.slow
def test_predict_service_runs(tmp_path):
    """The serving example, then the predict CLI against its artifacts."""
    workdir = tmp_path / "serve"
    result = _run("predict_service.py", "--quick", "--workdir", str(workdir),
                  timeout=900)
    assert result.returncode == 0, result.stderr
    assert "Predicted Hellinger distance" in result.stdout
    assert "streamed" in result.stdout
    assert "batched predict" in result.stdout
    # The CLI serves the artifacts the example left behind.
    cli = subprocess.run(
        [sys.executable, "-m", "repro", "predict", str(workdir / "circuits"),
         "--device", "q20a", "--model", str(workdir / "model.npz")],
        capture_output=True, text=True, timeout=600,
        cwd=str(EXAMPLES_DIR.parent),
        env={**__import__("os").environ,
             "PYTHONPATH": str(EXAMPLES_DIR.parent / "src")},
    )
    assert cli.returncode == 0, cli.stderr
    assert "predicted_hellinger" in cli.stdout


@pytest.mark.slow
def test_drift_study_example_runs_and_goes_warm(tmp_path):
    """The drift study must run end to end and its rerun must be a pure
    cache read (the nightly drift-smoke contract)."""
    cache = str(tmp_path / "drift-cache")
    result = _run("drift_study.py", "--quick", "--cache-dir", cache,
                  timeout=900)
    assert result.returncode == 0, result.stderr
    assert "drift study: zoo-grid8-typical-s0" in result.stdout
    assert "cold run" in result.stdout
    rerun = _run("drift_study.py", "--quick", "--cache-dir", cache,
                 "--expect-warm", timeout=900)
    assert rerun.returncode == 0, rerun.stderr
    assert "warm rerun: whole study served from cache" in rerun.stdout
