"""Unit tests for the noisy QPU executor."""


import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.compiler import compile_circuit
from repro.hardware import make_q20a, make_q20b
from repro.simulation.distributions import hellinger_distance
from repro.simulation.executor import QPUExecutor, execute_and_label
from repro.simulation.statevector import ideal_distribution


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def _compiled_ghz(device, n, seed=1):
    qc = QuantumCircuit(n)
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    qc.measure_all()
    return compile_circuit(qc, device, optimization_level=2, seed=seed).circuit


def test_counts_sum_to_shots(device):
    compiled = _compiled_ghz(device, 4)
    result = QPUExecutor(device).execute(compiled, shots=512, seed=3)
    assert sum(result.counts.values()) == 512


def test_deterministic_given_seed(device):
    compiled = _compiled_ghz(device, 4)
    executor = QPUExecutor(device)
    a = executor.execute(compiled, shots=256, seed=7)
    b = executor.execute(compiled, shots=256, seed=7)
    assert a.counts == b.counts


def test_different_seed_changes_shot_noise(device):
    compiled = _compiled_ghz(device, 4)
    executor = QPUExecutor(device)
    a = executor.execute(compiled, shots=256, seed=7)
    b = executor.execute(compiled, shots=256, seed=8)
    assert a.counts != b.counts


def test_success_probability_decreases_with_size(device):
    values = []
    for n in (3, 6, 10):
        compiled = _compiled_ghz(device, n)
        result = QPUExecutor(device).execute(compiled, shots=128, seed=1)
        values.append(result.success_probability)
    assert values[0] > values[1] > values[2]


def test_hellinger_grows_with_circuit_size(device):
    distances = []
    for n in (3, 8, 14):
        compiled = _compiled_ghz(device, n)
        d, _ = execute_and_label(compiled, device, shots=2000, seed=5)
        distances.append(d)
    assert distances[0] < distances[1] < distances[2]


def test_label_in_unit_interval(device):
    compiled = _compiled_ghz(device, 5)
    d, _ = execute_and_label(compiled, device, shots=500, seed=2)
    assert 0.0 <= d <= 1.0


def test_validation_rejects_non_native(device):
    qc = QuantumCircuit(2, 2)
    qc.h(0).measure_all()
    with pytest.raises(ValueError, match="not native"):
        QPUExecutor(device).execute(qc, shots=10, seed=0)


def test_requires_measurements(device):
    qc = QuantumCircuit(2)
    qc.prx(0.3, 0.1, 0)
    with pytest.raises(ValueError, match="no measurements"):
        QPUExecutor(device).execute(qc, shots=10, seed=0)


def test_requires_positive_shots(device):
    compiled = _compiled_ghz(device, 3)
    with pytest.raises(ValueError, match="shots"):
        QPUExecutor(device).execute(compiled, shots=0, seed=0)


def test_trivial_circuit_mostly_zero(device):
    """An idle-ish circuit should return mostly all-zeros (readout noise only)."""
    qc = QuantumCircuit(2)
    qc.prx(0.0, 0.0, 0)
    qc.measure_all()
    result = QPUExecutor(device).execute(qc, shots=4000, seed=4)
    zero_fraction = result.counts.get("00", 0) / 4000
    assert zero_fraction > 0.85


def test_crosstalk_accumulates_on_parallel_cz(device):
    """Parallel CZ gates on adjacent edges must add crosstalk error."""
    # Edges (0,1) and (5,6) on the 4x5 grid: qubits 1 and 6 are adjacent.
    parallel = QuantumCircuit(device.num_qubits)
    for _ in range(10):
        parallel.cz(0, 1)
        parallel.cz(5, 6)
    parallel.measure_all()
    serial = QuantumCircuit(device.num_qubits)
    for _ in range(10):
        serial.cz(0, 1)
        serial.barrier()  # prevent ASAP layering from re-parallelizing
    for _ in range(10):
        serial.cz(5, 6)
        serial.barrier()
    serial.measure_all()
    executor = QPUExecutor(device)
    res_par = executor.execute(parallel, shots=10, seed=0)
    res_ser = executor.execute(serial, shots=10, seed=0)
    assert res_par.crosstalk_error_accumulated > 0
    assert res_ser.crosstalk_error_accumulated == pytest.approx(0.0)
    # Same gates -> same base gate error; crosstalk only hits the parallel
    # version.  (Total success also differs via idle dephasing, so compare
    # the gate+crosstalk channel specifically.)
    assert res_par.gate_error_accumulated == pytest.approx(
        res_ser.gate_error_accumulated
    )


def test_cleaner_device_scores_better():
    qa, qb = make_q20a(), make_q20b()
    qc = QuantumCircuit(8)
    qc.h(0)
    for i in range(7):
        qc.cx(i, i + 1)
    qc.measure_all()
    distances = {}
    for device in (qa, qb):
        compiled = compile_circuit(qc, device, optimization_level=2, seed=1).circuit
        total = 0.0
        for seed in range(5):
            d, _ = execute_and_label(compiled, device, shots=2000, seed=seed)
            total += d
        distances[device.name] = total / 5
    assert distances["Q20-B"] < distances["Q20-A"]


def test_precomputed_ideal_matches_internal(device):
    compiled = _compiled_ghz(device, 4)
    ideal = ideal_distribution(compiled)
    executor = QPUExecutor(device)
    with_ideal = executor.execute(compiled, shots=128, seed=9, ideal=ideal)
    without = executor.execute(compiled, shots=128, seed=9)
    assert with_ideal.counts == without.counts


def test_coherent_distortion_is_deterministic(device):
    compiled = _compiled_ghz(device, 5)
    ideal = ideal_distribution(compiled)
    executor = QPUExecutor(device)
    a = executor._coherent_distortion(compiled, ideal, success=0.5)
    b = executor._coherent_distortion(compiled, ideal, success=0.5)
    assert a == b
    assert sum(a.values()) == pytest.approx(1.0)


def test_more_shots_reduce_label_variance(device):
    compiled = _compiled_ghz(device, 5)
    ideal = ideal_distribution(compiled)

    def label_std(shots):
        labels = [
            hellinger_distance(
                ideal,
                QPUExecutor(device)
                .execute(compiled, shots=shots, seed=seed, ideal=ideal)
                .distribution(),
            )
            for seed in range(8)
        ]
        return np.std(labels)

    assert label_std(4000) < label_std(100)
