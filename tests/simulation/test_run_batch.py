"""Tests for the batched execution API (``QPUExecutor.run_batch``)."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.compiler import compile_circuit
from repro.hardware import make_q20a
from repro.simulation.executor import (
    SEED_STRIDE,
    QPUExecutor,
    parallel_map,
    resolve_workers,
)
from repro.simulation.statevector import ideal_distribution


@pytest.fixture(scope="module")
def device():
    return make_q20a()


@pytest.fixture(scope="module")
def circuits(device):
    """A small batch of distinct compiled circuits."""
    batch = []
    for n in (3, 4, 5, 6):
        qc = QuantumCircuit(n)
        qc.h(0)
        for i in range(n - 1):
            qc.cx(i, i + 1)
        qc.measure_all()
        batch.append(
            compile_circuit(qc, device, optimization_level=2, seed=n).circuit
        )
    return batch


def test_matches_sequential_execution(device, circuits):
    executor = QPUExecutor(device)
    batch = executor.run_batch(circuits, shots=300, seed=11, max_workers=1)
    for index, (circuit, result) in enumerate(zip(circuits, batch)):
        solo = executor.execute(
            circuit, shots=300, seed=11 + SEED_STRIDE * index
        )
        assert result.counts == solo.counts
        assert result.success_probability == solo.success_probability


def test_deterministic_across_worker_counts(device, circuits):
    executor = QPUExecutor(device)
    reference = None
    for workers in (1, 2, 4, 8):
        batch = executor.run_batch(
            circuits, shots=500, seed=5, max_workers=workers
        )
        counts = [result.counts for result in batch]
        if reference is None:
            reference = counts
        else:
            assert counts == reference


def test_result_ordering_matches_input_order(device, circuits):
    """Result i must describe circuit i (distinguished by output width)."""
    executor = QPUExecutor(device)
    batch = executor.run_batch(circuits, shots=100, seed=2, max_workers=4)
    for circuit, result in zip(circuits, batch):
        width = max(clbit for _, clbit in circuit.measured_qubits()) + 1
        assert all(len(key) == width for key in result.counts)


def test_explicit_seeds_override_base_seed(device, circuits):
    executor = QPUExecutor(device)
    seeds = [101, 202, 303, 404]
    batch = executor.run_batch(circuits, shots=200, seeds=seeds)
    for circuit, result, seed in zip(circuits, batch, seeds):
        solo = executor.execute(circuit, shots=200, seed=seed)
        assert result.counts == solo.counts


def test_mixed_precomputed_ideals(device, circuits):
    """None entries in `ideals` are simulated on the worker, others reused."""
    executor = QPUExecutor(device)
    ideals = [None] * len(circuits)
    ideals[1] = ideal_distribution(circuits[1])
    batch = executor.run_batch(circuits, shots=150, seed=9, ideals=ideals)
    reference = executor.run_batch(circuits, shots=150, seed=9)
    assert [r.counts for r in batch] == [r.counts for r in reference]


def test_length_validation(device, circuits):
    executor = QPUExecutor(device)
    with pytest.raises(ValueError, match="seeds"):
        executor.run_batch(circuits, seeds=[1, 2])
    with pytest.raises(ValueError, match="ideals"):
        executor.run_batch(circuits, ideals=[None])


def test_empty_batch(device):
    assert QPUExecutor(device).run_batch([]) == []


def test_parallel_map_preserves_order_and_results():
    items = list(range(25))
    expected = [i * i for i in items]
    assert parallel_map(lambda i: i * i, items, max_workers=1) == expected
    assert parallel_map(lambda i: i * i, items, max_workers=4) == expected


def test_resolve_workers():
    assert resolve_workers(3, 10) == 3
    assert resolve_workers(8, 2) == 2
    assert resolve_workers(None, 0) == 1
    with pytest.raises(ValueError):
        resolve_workers(0, 5)


def test_profile_cache_distinguishes_same_name_devices(device, circuits):
    """Two devices sharing a name but differing in calibration must not
    reuse each other's cached circuit profiles."""
    import dataclasses

    from repro.hardware import make_q20b

    drifted = dataclasses.replace(
        device, true_calibration=make_q20b().true_calibration
    )
    assert drifted.name == device.name
    circuit = circuits[2]
    original = QPUExecutor(device).execute(circuit, shots=50, seed=1)
    cross = QPUExecutor(drifted).execute(circuit, shots=50, seed=1)
    fresh = QPUExecutor(
        dataclasses.replace(
            device, true_calibration=make_q20b().true_calibration
        )
    ).execute(circuit, shots=50, seed=1)
    assert cross.success_probability == fresh.success_probability
    assert cross.success_probability != original.success_probability


def test_profile_cache_detects_in_place_calibration_drift(circuits):
    """Mutating a device's calibration in place must invalidate the cached
    execution profile (the staleness scenario this codebase models)."""
    device = make_q20a()
    circuit = circuits[1]
    executor = QPUExecutor(device)
    before = executor.execute(circuit, shots=50, seed=2)
    for qubit in device.true_calibration.t2:
        device.true_calibration.t2[qubit] *= 1e-3
    after = executor.execute(circuit, shots=50, seed=2)
    fresh = QPUExecutor(make_q20a())
    for qubit in fresh.device.true_calibration.t2:
        fresh.device.true_calibration.t2[qubit] *= 1e-3
    expected = fresh.execute(circuit, shots=50, seed=2)
    assert after.success_probability == expected.success_probability
    assert after.success_probability < before.success_probability


def test_batch_reproducible_end_to_end(device, circuits):
    """Two identical batch runs give identical counts (per-circuit streams)."""
    executor = QPUExecutor(device)
    first = executor.run_batch(circuits, shots=400, seed=21, max_workers=4)
    second = executor.run_batch(circuits, shots=400, seed=21, max_workers=4)
    assert [r.counts for r in first] == [r.counts for r in second]
