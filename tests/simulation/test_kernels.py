"""Kernel-equivalence tests: the fused tensor engine vs naive linear algebra.

Every optimized path — matrix caching, single-qubit fusion, block fusion,
diagonal collapsing, lazy axis permutation, SWAP relabeling — must produce
the same state as the textbook implementation: embed each gate into the
full ``2**n x 2**n`` unitary and multiply dense matrices.  The reference
here is deliberately independent of the production kernels (plain bit
loops), so a bug in the shared machinery cannot cancel out.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.circuits.random import random_circuit
from repro.simulation.density import simulate_density
from repro.simulation.kernels import (
    apply_matrix,
    block_ops,
    cached_gate_matrix,
    fuse_instructions,
    run_fused_ops,
)
from repro.simulation.statevector import circuit_unitary, simulate_statevector


def embed_full(matrix: np.ndarray, qubits, num_qubits: int) -> np.ndarray:
    """Naive embedding of a k-qubit operator into the full Hilbert space."""
    k = len(qubits)
    dim = 1 << num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    others = [q for q in range(num_qubits) if q not in qubits]
    for row_local in range(1 << k):
        for col_local in range(1 << k):
            amplitude = matrix[row_local, col_local]
            if amplitude == 0:
                continue
            for rest in range(1 << len(others)):
                base = 0
                for index, qubit in enumerate(others):
                    if (rest >> index) & 1:
                        base |= 1 << qubit
                row = base
                col = base
                for index, qubit in enumerate(qubits):
                    if (row_local >> index) & 1:
                        row |= 1 << qubit
                    if (col_local >> index) & 1:
                        col |= 1 << qubit
                full[row, col] += amplitude
    return full


def naive_statevector(circuit: QuantumCircuit) -> np.ndarray:
    """Reference simulation: one full-matrix multiply per instruction."""
    state = np.zeros(1 << circuit.num_qubits, dtype=complex)
    state[0] = 1.0
    for instruction in circuit.instructions:
        if not instruction.is_unitary:
            continue
        full = embed_full(
            gate_matrix(instruction.name, instruction.params),
            instruction.qubits,
            circuit.num_qubits,
        )
        state = full @ state
    if circuit.global_phase:
        state = state * np.exp(1j * circuit.global_phase)
    return state


def naive_unitary(circuit: QuantumCircuit) -> np.ndarray:
    total = np.eye(1 << circuit.num_qubits, dtype=complex)
    for instruction in circuit.instructions:
        if not instruction.is_unitary:
            continue
        total = embed_full(
            gate_matrix(instruction.name, instruction.params),
            instruction.qubits,
            circuit.num_qubits,
        ) @ total
    return total


def _mixed_circuit(num_qubits: int, depth: int, seed: int) -> QuantumCircuit:
    """Random circuit exercising diagonal runs, swaps, and 3-qubit gates."""
    circuit = random_circuit(num_qubits, depth, seed=seed)
    rng = np.random.default_rng(seed + 1000)
    # Salt with structures the fusion engine treats specially.
    if num_qubits >= 3:
        qubits = rng.choice(num_qubits, size=3, replace=False)
        circuit.ccx(int(qubits[0]), int(qubits[1]), int(qubits[2]))
        circuit.ccz(int(qubits[2]), int(qubits[0]), int(qubits[1]))
    a, b = rng.choice(num_qubits, size=2, replace=False)
    circuit.swap(int(a), int(b))
    circuit.cp(0.37, int(a), int(b))
    circuit.rz(1.23, int(a))
    return circuit


@pytest.mark.parametrize("num_qubits", range(2, 9))
def test_statevector_fused_matches_naive(num_qubits):
    circuit = _mixed_circuit(num_qubits, depth=12, seed=num_qubits)
    fast = simulate_statevector(circuit).data
    reference = naive_statevector(circuit)
    assert np.allclose(fast, reference, atol=1e-10)


@pytest.mark.parametrize("seed", range(6))
def test_statevector_fused_matches_naive_across_seeds(seed):
    circuit = _mixed_circuit(5, depth=20, seed=seed)
    fast = simulate_statevector(circuit).data
    reference = naive_statevector(circuit)
    assert np.allclose(fast, reference, atol=1e-10)


@pytest.mark.parametrize("num_qubits", range(2, 6))
def test_density_fused_matches_naive(num_qubits):
    circuit = _mixed_circuit(num_qubits, depth=8, seed=17 + num_qubits)
    rho = simulate_density(circuit).data
    state = naive_statevector(circuit)
    reference = np.outer(state, state.conj())
    assert np.allclose(rho, reference, atol=1e-10)


@pytest.mark.parametrize("num_qubits", range(2, 6))
def test_circuit_unitary_matches_naive(num_qubits):
    circuit = _mixed_circuit(num_qubits, depth=6, seed=31 + num_qubits)
    circuit.global_phase = 0.0
    assert np.allclose(
        circuit_unitary(circuit), naive_unitary(circuit), atol=1e-10
    )


@pytest.mark.parametrize("seed", range(8))
def test_apply_matrix_matches_embedding(seed):
    """The canonical per-gate kernel agrees with full-matrix application."""
    rng = np.random.default_rng(seed)
    num_qubits = int(rng.integers(2, 7))
    k = int(rng.integers(1, min(num_qubits, 3) + 1))
    qubits = tuple(int(q) for q in rng.choice(num_qubits, size=k, replace=False))
    raw = rng.standard_normal((1 << k, 1 << k)) + 1j * rng.standard_normal(
        (1 << k, 1 << k)
    )
    unitary, _ = np.linalg.qr(raw)
    state = rng.standard_normal(1 << num_qubits) + 1j * rng.standard_normal(
        1 << num_qubits
    )
    state /= np.linalg.norm(state)
    fast = apply_matrix(state.copy(), unitary, qubits, num_qubits)
    reference = embed_full(unitary, qubits, num_qubits) @ state
    assert np.allclose(fast, reference, atol=1e-10)


@pytest.mark.parametrize("seed", range(4))
def test_run_fused_ops_matches_per_gate_application(seed):
    """Blocked/planned execution equals gate-by-gate canonical application."""
    circuit = _mixed_circuit(6, depth=15, seed=seed + 50)
    ops = fuse_instructions(circuit.instructions)
    state = np.zeros(1 << 6, dtype=complex)
    state[0] = 1.0
    fused = run_fused_ops(state.copy(), ops, 6)
    reference = state.copy()
    for matrix, qubits, _ in ops:
        reference = apply_matrix(reference, matrix, qubits, 6)
    assert np.allclose(fused, reference, atol=1e-10)


def test_fusion_preserves_gate_count_semantics():
    """Fused op list applies the same total unitary as the instruction list."""
    circuit = _mixed_circuit(4, depth=10, seed=99)
    ops = fuse_instructions(circuit.instructions)
    total = np.eye(1 << 4, dtype=complex)
    for matrix, qubits, _ in ops:
        total = embed_full(matrix, qubits, 4) @ total
    assert np.allclose(total, naive_unitary(circuit), atol=1e-10)


def test_block_ops_cover_all_gates():
    """Blocking loses no operations: its blocks rebuild the full unitary."""
    circuit = _mixed_circuit(4, depth=10, seed=7)
    blocks = block_ops(fuse_instructions(circuit.instructions))
    total = np.eye(1 << 4, dtype=complex)
    swap = gate_matrix("swap")
    for kind, qubits, payload in blocks:
        if kind == "s":
            matrix = swap
        elif kind == "d":
            matrix = np.diag(payload)
        else:
            matrix = payload
        total = embed_full(matrix, qubits, 4) @ total
    assert np.allclose(total, naive_unitary(circuit), atol=1e-10)


def test_cached_gate_matrix_identity_and_immutability():
    first = cached_gate_matrix("rz", (0.5,))
    second = cached_gate_matrix("rz", (0.5,))
    assert first is second
    assert not first.flags.writeable
    assert np.allclose(first, gate_matrix("rz", (0.5,)))


def test_plan_cache_invalidates_on_same_length_in_place_edit():
    """Replacing an instruction in place (length unchanged) must not serve
    the stale cached plan."""
    from repro.circuits.circuit import Instruction
    from repro.simulation.statevector import ideal_distribution

    circuit = QuantumCircuit(1, 1)
    circuit.x(0)
    circuit.measure(0, 0)
    assert ideal_distribution(circuit) == {"1": pytest.approx(1.0)}
    circuit.instructions[0] = Instruction("h", (0,))
    refreshed = ideal_distribution(circuit)
    assert refreshed["0"] == pytest.approx(0.5)
    assert refreshed["1"] == pytest.approx(0.5)


def test_fixed_seed_distributions_are_bit_identical():
    """Same circuit, same dtype: repeated runs reproduce exact amplitudes."""
    circuit = _mixed_circuit(6, depth=20, seed=3)
    first = simulate_statevector(circuit).data
    second = simulate_statevector(circuit).data
    assert np.array_equal(first, second)
    # A fresh, structurally identical circuit (different object, cold
    # caches) must also reproduce the amplitudes exactly.
    clone = _mixed_circuit(6, depth=20, seed=3)
    third = simulate_statevector(clone).data
    assert np.array_equal(first, third)
