"""Unit tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.circuits.random import random_circuit
from repro.simulation.statevector import (
    Statevector,
    circuit_unitary,
    ideal_distribution,
    sample_counts,
    simulate_statevector,
)


def test_initial_state():
    state = Statevector(3)
    assert state.data[0] == 1.0
    assert np.count_nonzero(state.data) == 1


def test_x_flips_correct_bit():
    for qubit in range(3):
        qc = QuantumCircuit(3)
        qc.x(qubit)
        state = simulate_statevector(qc)
        assert np.isclose(abs(state.data[1 << qubit]), 1.0)


def test_bell_state():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    state = simulate_statevector(qc)
    expected = np.zeros(4, dtype=complex)
    expected[0] = expected[3] = 1 / math.sqrt(2)
    assert np.allclose(state.data, expected)


def test_ghz_distribution():
    qc = QuantumCircuit(4, 4)
    qc.h(0)
    for i in range(3):
        qc.cx(i, i + 1)
    qc.measure_all()
    dist = ideal_distribution(qc)
    assert set(dist) == {"0000", "1111"}
    assert math.isclose(dist["0000"], 0.5, abs_tol=1e-9)


def test_qiskit_bit_order_convention():
    """x on qubit 0 -> bitstring '01' (qubit 0 is right-most)."""
    qc = QuantumCircuit(2, 2)
    qc.x(0)
    qc.measure_all()
    dist = ideal_distribution(qc)
    assert dist == {"01": pytest.approx(1.0)}


def test_partial_measurement_marginalizes():
    qc = QuantumCircuit(2, 1)
    qc.h(0).cx(0, 1)
    qc.measure(1, 0)
    dist = ideal_distribution(qc)
    assert dist == {
        "0": pytest.approx(0.5),
        "1": pytest.approx(0.5),
    }


def test_measure_into_swapped_clbits():
    qc = QuantumCircuit(2, 2)
    qc.x(0)
    qc.measure(0, 1)
    qc.measure(1, 0)
    dist = ideal_distribution(qc)
    assert dist == {"10": pytest.approx(1.0)}


@pytest.mark.parametrize("seed", range(5))
def test_kernels_match_general_path(seed):
    qc = random_circuit(5, 12, seed=seed)
    fast = simulate_statevector(qc)
    reference = Statevector(5)
    for instruction in qc.instructions:
        if instruction.is_unitary:
            reference._apply_general(
                gate_matrix(instruction.name, instruction.params),
                instruction.qubits,
            )
    assert np.allclose(fast.data, reference.data, atol=1e-10)


def test_norm_preserved():
    qc = random_circuit(6, 30, seed=9)
    state = simulate_statevector(qc)
    assert math.isclose(float(np.sum(state.probabilities())), 1.0, abs_tol=1e-9)


def test_complex64_close_to_complex128():
    qc = random_circuit(6, 30, seed=11)
    d64 = ideal_distribution(qc, dtype=np.complex64)
    d128 = ideal_distribution(qc)
    keys = set(d64) | set(d128)
    for key in keys:
        assert math.isclose(
            d64.get(key, 0.0), d128.get(key, 0.0), abs_tol=1e-5
        )


def test_circuit_unitary_identity():
    qc = QuantumCircuit(2)
    unitary = circuit_unitary(qc)
    assert np.allclose(unitary, np.eye(4))


def test_circuit_unitary_composition():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    unitary = circuit_unitary(qc)
    h_full = np.kron(np.eye(2), gate_matrix("h"))
    expected = gate_matrix("cx") @ h_full
    assert np.allclose(unitary, expected, atol=1e-10)


def test_circuit_unitary_size_limit():
    with pytest.raises(ValueError, match="12 qubits"):
        circuit_unitary(QuantumCircuit(13))


def test_marginal_probabilities_ordering():
    qc = QuantumCircuit(3)
    qc.x(2)
    state = simulate_statevector(qc)
    marginal = state.marginal_probabilities([2, 0])
    # bit 0 of output = qubit 2 (value 1), bit 1 = qubit 0 (value 0).
    assert np.isclose(marginal[1], 1.0)


def test_expectation_z():
    qc = QuantumCircuit(1)
    state = simulate_statevector(qc)
    assert math.isclose(state.expectation_z(0), 1.0)
    qc.x(0)
    state = simulate_statevector(qc)
    assert math.isclose(state.expectation_z(0), -1.0)


def test_fidelity():
    a = simulate_statevector(QuantumCircuit(2))
    qc = QuantumCircuit(2)
    qc.x(0)
    b = simulate_statevector(qc)
    assert math.isclose(a.fidelity(a), 1.0)
    assert math.isclose(a.fidelity(b), 0.0, abs_tol=1e-12)


def test_sample_counts_total_and_support():
    rng = np.random.default_rng(0)
    dist = {"00": 0.25, "01": 0.75}
    counts = sample_counts(dist, 1000, rng)
    assert sum(counts.values()) == 1000
    assert set(counts) <= {"00", "01"}
    assert counts["01"] > counts["00"]


def test_global_phase_in_distribution_is_invisible():
    qc = QuantumCircuit(1, 1, global_phase=1.234)
    qc.h(0)
    qc.measure(0, 0)
    dist = ideal_distribution(qc)
    assert math.isclose(dist["0"], 0.5, abs_tol=1e-9)
