"""Lifecycle of the executor's circuit-static profile cache.

Profiles are keyed by ``(id(circuit), id(device))`` and must be evicted
when *either* side dies: circuit finalization has been covered since PR 1;
device finalization is the PR-1 follow-up regression covered here (a
long-lived circuit executed against short-lived devices used to pin
dead-device entries until the circuit itself was collected).
"""

import gc

from repro.circuits.circuit import QuantumCircuit
from repro.hardware import make_q20a
from repro.simulation.executor import (
    _DEVICE_KEYS,
    _PROFILE_CACHE,
    QPUExecutor,
)


def _compiled_bell(device):
    from repro.compiler import compile_circuit

    qc = QuantumCircuit(2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure_all()
    return compile_circuit(qc, device, optimization_level=1, seed=0).circuit


def test_profile_cached_per_circuit_and_device():
    device = make_q20a()
    circuit = _compiled_bell(device)
    executor = QPUExecutor(device)
    executor.execute(circuit, shots=16, seed=0)
    key = (id(circuit), id(device))
    assert key in _PROFILE_CACHE
    assert key in _DEVICE_KEYS[id(device)]


def test_dead_device_entries_are_evicted():
    device = make_q20a()
    circuit = _compiled_bell(device)
    QPUExecutor(device).execute(circuit, shots=16, seed=0)
    device_id = id(device)
    key = (id(circuit), device_id)
    assert key in _PROFILE_CACHE

    del device
    gc.collect()

    # The circuit is still alive, but the device finalizer must have
    # dropped every profile computed against the dead device.
    assert key not in _PROFILE_CACHE
    assert device_id not in _DEVICE_KEYS
    assert circuit is not None  # keep the circuit alive to the end


def test_dead_circuit_entries_leave_device_bookkeeping_clean():
    device = make_q20a()
    circuit = _compiled_bell(device)
    QPUExecutor(device).execute(circuit, shots=16, seed=0)
    key = (id(circuit), id(device))
    assert key in _DEVICE_KEYS[id(device)]

    del circuit
    gc.collect()

    assert key not in _PROFILE_CACHE
    # The per-device key set must not retain keys of dead circuits.
    assert key not in _DEVICE_KEYS.get(id(device), set())
    assert device is not None  # keep the device alive to the end


def test_device_id_reuse_gets_fresh_finalizer():
    # Exercise several create/collect cycles: recycled device ids must be
    # re-registered and still evict on death.
    for _ in range(3):
        device = make_q20a()
        circuit = _compiled_bell(device)
        QPUExecutor(device).execute(circuit, shots=16, seed=0)
        device_id = id(device)
        assert _DEVICE_KEYS.get(device_id)
        del device
        gc.collect()
        assert device_id not in _DEVICE_KEYS
