"""Unit tests for ASCII histogram rendering."""

from repro.simulation.histogram import render_comparison, render_histogram


def test_render_histogram_basic():
    text = render_histogram({"00": 0.75, "11": 0.25}, title="bell")
    lines = text.splitlines()
    assert lines[0] == "bell"
    assert "00" in lines[1]
    assert "0.7500" in lines[1]
    # The peak bar is the longest one.
    assert lines[1].count("#") > lines[2].count("#")


def test_render_histogram_truncates():
    dist = {format(i, "04b"): 1 / 16 for i in range(16)}
    text = render_histogram(dist, max_rows=4)
    assert "(other)" in text
    assert len(text.splitlines()) == 5


def test_render_histogram_zero_tail_hidden():
    text = render_histogram({"0": 1.0, "1": 0.0})
    assert "(other)" not in text


def test_render_comparison_shows_both():
    ideal = {"00": 0.5, "11": 0.5}
    measured = {"00": 0.4, "11": 0.35, "01": 0.25}
    text = render_comparison(ideal, measured, title="cmp")
    assert "cmp" in text
    assert "ideal" in text
    assert "measured" in text
    assert "#" in text and "=" in text
    assert "01" in text


def test_render_comparison_truncation_note():
    ideal = {format(i, "04b"): 1 / 16 for i in range(16)}
    text = render_comparison(ideal, ideal, max_rows=3)
    assert "more outcomes" in text


def test_render_comparison_custom_labels():
    text = render_comparison({"0": 1.0}, {"0": 1.0}, labels=("a", "b"))
    assert " a" in text and " b" in text
