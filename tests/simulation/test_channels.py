"""Unit tests for Kraus channels."""


import numpy as np
import pytest

from repro.simulation.channels import (
    amplitude_damping,
    bit_flip,
    compose_channels,
    depolarizing,
    identity_channel,
    is_trace_preserving,
    phase_damping,
    phase_flip,
    readout_confusion_matrix,
    thermal_relaxation,
    two_qubit_depolarizing,
)

ALL_CHANNELS = [
    ("identity", identity_channel()),
    ("bit_flip", bit_flip(0.1)),
    ("phase_flip", phase_flip(0.2)),
    ("depolarizing", depolarizing(0.3)),
    ("two_qubit_depolarizing", two_qubit_depolarizing(0.1)),
    ("amplitude_damping", amplitude_damping(0.25)),
    ("phase_damping", phase_damping(0.15)),
    ("thermal", thermal_relaxation(100.0, 80.0, 10.0)),
]


@pytest.mark.parametrize("name,channel", ALL_CHANNELS)
def test_trace_preserving(name, channel):
    assert is_trace_preserving(channel), name


def test_probability_validation():
    for factory in (bit_flip, phase_flip, depolarizing, amplitude_damping,
                    phase_damping):
        with pytest.raises(ValueError):
            factory(1.5)
        with pytest.raises(ValueError):
            factory(-0.1)


def test_bit_flip_action():
    channel = bit_flip(1.0)
    rho = np.array([[1, 0], [0, 0]], dtype=complex)
    out = sum(k @ rho @ k.conj().T for k in channel)
    assert np.allclose(out, [[0, 0], [0, 1]])


def test_depolarizing_fixed_point_is_maximally_mixed():
    channel = depolarizing(0.75)  # full depolarization (p = 3/4)
    rho = np.array([[1, 0], [0, 0]], dtype=complex)
    out = sum(k @ rho @ k.conj().T for k in channel)
    assert np.allclose(out, np.eye(2) / 2, atol=1e-12)


def test_amplitude_damping_decays_excited_state():
    channel = amplitude_damping(0.4)
    rho = np.array([[0, 0], [0, 1]], dtype=complex)
    out = sum(k @ rho @ k.conj().T for k in channel)
    assert out[0, 0] == pytest.approx(0.4)
    assert out[1, 1] == pytest.approx(0.6)


def test_amplitude_damping_fixes_ground_state():
    channel = amplitude_damping(0.9)
    rho = np.array([[1, 0], [0, 0]], dtype=complex)
    out = sum(k @ rho @ k.conj().T for k in channel)
    assert np.allclose(out, rho)


def test_phase_damping_kills_coherence_not_populations():
    channel = phase_damping(1.0)
    plus = np.full((2, 2), 0.5, dtype=complex)
    out = sum(k @ plus @ k.conj().T for k in channel)
    assert out[0, 0] == pytest.approx(0.5)
    assert abs(out[0, 1]) == pytest.approx(0.0, abs=1e-12)


def test_thermal_relaxation_rejects_unphysical():
    with pytest.raises(ValueError, match="unphysical"):
        thermal_relaxation(10.0, 25.0, 1.0)
    with pytest.raises(ValueError):
        thermal_relaxation(-1.0, 1.0, 1.0)


def test_thermal_relaxation_limits():
    # Long duration: excited population fully decays.
    channel = thermal_relaxation(1.0, 1.0, 100.0)
    rho = np.array([[0, 0], [0, 1]], dtype=complex)
    out = sum(k @ rho @ k.conj().T for k in channel)
    assert out[0, 0] == pytest.approx(1.0, abs=1e-6)


def test_compose_channels_is_sequential():
    full_flip = compose_channels(bit_flip(1.0), bit_flip(1.0))
    rho = np.array([[1, 0], [0, 0]], dtype=complex)
    out = sum(k @ rho @ k.conj().T for k in full_flip)
    assert np.allclose(out, rho)  # two flips cancel
    assert is_trace_preserving(full_flip)


def test_readout_confusion_matrix_columns_sum_to_one():
    m = readout_confusion_matrix(0.03, 0.08)
    assert np.allclose(m.sum(axis=0), [1.0, 1.0])
    assert m[1, 0] == pytest.approx(0.03)
    assert m[0, 1] == pytest.approx(0.08)
