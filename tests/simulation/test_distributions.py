"""Unit tests for distribution utilities and the Hellinger distance."""

import math
import os

import numpy as np
import pytest

from repro.simulation.distributions import (
    apply_bitflip_confusion,
    bhattacharyya_coefficient,
    counts_to_distribution,
    cross_entropy,
    hellinger_distance,
    hellinger_fidelity,
    marginalize,
    mix,
    normalize,
    shannon_entropy,
    total_variation_distance,
    uniform_distribution,
    validate_distribution,
)


def test_hellinger_identity():
    p = {"00": 0.5, "11": 0.5}
    assert hellinger_distance(p, p) == pytest.approx(0.0)


def test_hellinger_disjoint_support_is_one():
    p = {"00": 1.0}
    q = {"11": 1.0}
    assert hellinger_distance(p, q) == pytest.approx(1.0)


def test_hellinger_symmetry():
    p = {"00": 0.7, "01": 0.3}
    q = {"00": 0.2, "01": 0.5, "10": 0.3}
    assert hellinger_distance(p, q) == pytest.approx(hellinger_distance(q, p))


def test_hellinger_known_value():
    p = {"0": 1.0}
    q = {"0": 0.5, "1": 0.5}
    expected = math.sqrt(1.0 - math.sqrt(0.5))
    assert hellinger_distance(p, q) == pytest.approx(expected)


def test_hellinger_triangle_inequality():
    rng = np.random.default_rng(0)
    keys = ["00", "01", "10", "11"]
    for _ in range(50):
        dists = []
        for _ in range(3):
            raw = rng.dirichlet(np.ones(4))
            dists.append(dict(zip(keys, raw)))
        p, q, r = dists
        assert hellinger_distance(p, r) <= (
            hellinger_distance(p, q) + hellinger_distance(q, r) + 1e-12
        )


def test_hellinger_fidelity_relationship():
    p = {"0": 0.8, "1": 0.2}
    q = {"0": 0.3, "1": 0.7}
    d = hellinger_distance(p, q)
    assert hellinger_fidelity(p, q) == pytest.approx((1 - d * d) ** 2)


def test_total_variation_bounds_and_known_value():
    p = {"0": 1.0}
    q = {"0": 0.5, "1": 0.5}
    assert total_variation_distance(p, q) == pytest.approx(0.5)
    assert total_variation_distance(p, p) == pytest.approx(0.0)


def test_bhattacharyya():
    p = {"0": 0.5, "1": 0.5}
    assert bhattacharyya_coefficient(p, p) == pytest.approx(1.0)


def test_cross_entropy_self_is_entropy():
    p = {"0": 0.25, "1": 0.75}
    assert cross_entropy(p, p) == pytest.approx(
        -(0.25 * math.log(0.25) + 0.75 * math.log(0.75))
    )


def test_shannon_entropy():
    assert shannon_entropy({"0": 1.0}) == pytest.approx(0.0)
    assert shannon_entropy({"0": 0.5, "1": 0.5}) == pytest.approx(1.0)


def test_uniform_distribution():
    u = uniform_distribution(3)
    assert len(u) == 8
    assert sum(u.values()) == pytest.approx(1.0)
    assert u["101"] == pytest.approx(1 / 8)


def test_normalize():
    d = normalize({"a": 2.0, "b": 6.0})
    assert d == {"a": pytest.approx(0.25), "b": pytest.approx(0.75)}
    with pytest.raises(ValueError):
        normalize({"a": 0.0})


def test_counts_to_distribution():
    d = counts_to_distribution({"00": 750, "11": 250})
    assert d["00"] == pytest.approx(0.75)
    with pytest.raises(ValueError):
        counts_to_distribution({})


def test_validate_distribution():
    validate_distribution({"0": 0.5, "1": 0.5})
    with pytest.raises(ValueError, match="negative"):
        validate_distribution({"0": -0.1, "1": 1.1})
    with pytest.raises(ValueError, match="sum"):
        validate_distribution({"0": 0.6})


def test_mix():
    p = {"0": 1.0}
    q = {"1": 1.0}
    m = mix(p, q, 0.25)
    assert m == {"0": pytest.approx(0.25), "1": pytest.approx(0.75)}
    with pytest.raises(ValueError):
        mix(p, q, 1.5)


def test_apply_bitflip_confusion_identity():
    p = {"01": 0.5, "10": 0.5}
    out = apply_bitflip_confusion(p, [0.0, 0.0], [0.0, 0.0])
    assert out == p


def test_apply_bitflip_confusion_full_flip():
    p = {"0": 1.0}
    out = apply_bitflip_confusion(p, [1.0], [0.0])
    assert out == {"1": pytest.approx(1.0)}


def test_apply_bitflip_confusion_preserves_mass():
    p = {"010": 0.4, "111": 0.6}
    out = apply_bitflip_confusion(p, [0.1, 0.2, 0.05], [0.3, 0.1, 0.2])
    assert sum(out.values()) == pytest.approx(1.0)


def test_apply_bitflip_confusion_bit_indexing():
    # Bit 0 is the right-most character.
    p = {"00": 1.0}
    out = apply_bitflip_confusion(p, [1.0, 0.0], [0.0, 0.0])
    assert out == {"01": pytest.approx(1.0)}


def test_marginalize():
    p = {"01": 0.5, "11": 0.5}
    # Keep bit 0 (right-most): always 1.
    assert marginalize(p, [0]) == {"1": pytest.approx(1.0)}
    # Keep bit 1: 0 or 1 with equal probability.
    out = marginalize(p, [1])
    assert out["0"] == pytest.approx(0.5)
    assert out["1"] == pytest.approx(0.5)


def test_distribution_metrics_are_hash_salt_invariant():
    """The distance metrics must not depend on PYTHONHASHSEED.

    Float addition is not associative, and set iteration order follows
    the per-interpreter string-hash salt — an unsorted accumulation over
    ``set(p) | set(q)`` gives label values that differ in the last ulp
    between interpreters, which forest training amplifies into visibly
    different models (the run_study divergence this pins was one part in
    ~1e16 on a single Hellinger label).  Regression: compute each metric
    over a wide support in freshly salted subprocesses and demand exact
    byte equality.
    """
    import subprocess
    import sys

    script = (
        "import random\n"
        "from repro.simulation.distributions import ("
        "bhattacharyya_coefficient, hellinger_distance, "
        "total_variation_distance)\n"
        "rng = random.Random(7)\n"
        "keys = [format(i, '08b') for i in range(256)]\n"
        "p = {k: rng.random() for k in keys}\n"
        "q = {k: rng.random() for k in rng.sample(keys, 200)}\n"
        "total_p = sum(p.values()); total_q = sum(q.values())\n"
        "p = {k: v / total_p for k, v in p.items()}\n"
        "q = {k: v / total_q for k, v in q.items()}\n"
        "print(repr(hellinger_distance(p, q)))\n"
        "print(repr(total_variation_distance(p, q)))\n"
        "print(repr(bhattacharyya_coefficient(p, q)))\n"
    )
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    outputs = set()
    for salt in ("0", "1", "4", "1234567"):
        env = dict(os.environ, PYTHONHASHSEED=salt, PYTHONPATH=src_dir)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1, outputs
