"""Unit tests for the density-matrix simulator (validation substrate)."""


import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random import random_circuit
from repro.simulation.channels import (
    amplitude_damping,
    depolarizing,
    two_qubit_depolarizing,
)
from repro.simulation.density import DensityMatrix, simulate_density
from repro.simulation.statevector import ideal_distribution, simulate_statevector


def test_initial_state_pure_zero():
    rho = DensityMatrix(2)
    assert rho.trace() == pytest.approx(1.0)
    assert rho.purity() == pytest.approx(1.0)
    assert rho.data[0, 0] == pytest.approx(1.0)


def test_noiseless_matches_statevector():
    qc = random_circuit(3, 8, seed=5)
    rho = simulate_density(qc)
    state = simulate_statevector(qc)
    expected = np.outer(state.data, state.data.conj())
    assert np.allclose(rho.data, expected, atol=1e-9)


def test_noiseless_distribution_matches():
    qc = random_circuit(3, 6, seed=7, measure=True)
    rho = simulate_density(qc)
    dm_dist = rho.measurement_distribution()
    sv_dist = ideal_distribution(qc.without_directives().copy())
    # ideal_distribution without measures reports all qubits.
    sv_all = ideal_distribution(qc.without_directives())
    for key in set(dm_dist) | set(sv_all):
        assert dm_dist.get(key, 0.0) == pytest.approx(
            sv_all.get(key, 0.0), abs=1e-9
        )


def test_depolarizing_noise_reduces_purity():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    rho = simulate_density(
        qc,
        default_1q_noise=depolarizing(0.05),
        default_2q_noise=two_qubit_depolarizing(0.05),
    )
    assert rho.trace() == pytest.approx(1.0, abs=1e-9)
    assert rho.purity() < 1.0


def test_noise_scaling_with_gate_count():
    """More noisy gates -> lower fidelity with the ideal state (executor's premise)."""
    purities = []
    for repetitions in (1, 5, 10):
        qc = QuantumCircuit(1)
        for _ in range(repetitions):
            qc.x(0)
            qc.x(0)
        rho = simulate_density(qc, default_1q_noise=depolarizing(0.05))
        purities.append(rho.purity())
    assert purities[0] > purities[1] > purities[2]


def test_amplitude_damping_biases_towards_zero():
    """Validates the executor's 0-biased 'garbage' distribution physically."""
    qc = QuantumCircuit(1)
    qc.h(0)
    for _ in range(20):
        qc.i(0)
    rho = simulate_density(qc, default_1q_noise=amplitude_damping(0.2))
    dist = rho.measurement_distribution()
    assert dist["0"] > dist["1"]


def test_per_gate_noise_map():
    qc = QuantumCircuit(1)
    qc.x(0)  # index 0
    qc.x(0)  # index 1
    rho = simulate_density(qc, gate_noise={1: depolarizing(0.3)})
    assert rho.purity() < 1.0
    rho_clean = simulate_density(qc, gate_noise={})
    assert rho_clean.purity() == pytest.approx(1.0)


def test_trace_preserved_under_any_channel():
    qc = random_circuit(2, 6, seed=9)
    rho = simulate_density(
        qc,
        default_1q_noise=amplitude_damping(0.1),
        default_2q_noise=two_qubit_depolarizing(0.2),
    )
    assert rho.trace() == pytest.approx(1.0, abs=1e-9)


def test_size_limit():
    with pytest.raises(ValueError):
        DensityMatrix(11)


def test_measurement_distribution_subset():
    qc = QuantumCircuit(2)
    qc.x(1)
    rho = simulate_density(qc)
    assert rho.measurement_distribution([1]) == {"1": pytest.approx(1.0)}
    assert rho.measurement_distribution([0]) == {"0": pytest.approx(1.0)}
