"""Model persistence: save→load→predict bit-equality and error paths."""

import json

import numpy as np
import pytest

from repro.evaluation.persistence import (
    PersistenceError,
    load_model,
    save_model,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor
from repro.predictor.estimator import HellingerEstimator


def _data(n=120, m=8, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, m))
    y = 1.0 - np.exp(-(2 * X[:, 1] + X[:, m - 1])) + 0.05 * rng.standard_normal(n)
    return X, y


def test_tree_roundtrip_bit_equal(tmp_path):
    X, y = _data()
    tree = DecisionTreeRegressor(
        max_depth=6, max_features="sqrt", random_state=3
    ).fit(X, y)
    path = save_model(tree, tmp_path / "tree.npz")
    loaded = load_model(path)
    assert isinstance(loaded, DecisionTreeRegressor)
    assert np.array_equal(tree.predict(X), loaded.predict(X))
    assert np.array_equal(
        tree.feature_importances_, loaded.feature_importances_
    )
    assert loaded.get_params() == tree.get_params()
    assert loaded.depth() == tree.depth()
    assert loaded.num_leaves() == tree.num_leaves()


def test_forest_roundtrip_bit_equal(tmp_path):
    X, y = _data()
    forest = RandomForestRegressor(n_estimators=9, random_state=1).fit(X, y)
    path = save_model(forest, tmp_path / "forest.npz")
    loaded = load_model(path)
    assert isinstance(loaded, RandomForestRegressor)
    assert np.array_equal(forest.predict(X), loaded.predict(X))
    assert np.array_equal(forest.predict_std(X), loaded.predict_std(X))
    assert np.array_equal(
        forest.feature_importances_, loaded.feature_importances_
    )
    assert loaded.get_params() == forest.get_params()
    assert len(loaded.estimators_) == 9


def test_estimator_roundtrip_bit_equal(tmp_path):
    X, y = _data(100)
    grid = {"n_estimators": [6], "max_depth": [None, 4],
            "min_samples_leaf": [1], "min_samples_split": [2]}
    estimator = HellingerEstimator(param_grid=grid, seed=0).fit(X, y)
    path = save_model(estimator, tmp_path / "estimator.npz")
    loaded = load_model(path)
    assert isinstance(loaded, HellingerEstimator)
    assert np.array_equal(estimator.predict(X), loaded.predict(X))
    assert np.array_equal(
        estimator.feature_importances_, loaded.feature_importances_
    )
    assert loaded.best_params_ == estimator.best_params_
    assert loaded.cv_score_ == estimator.cv_score_
    assert loaded.param_grid == estimator.param_grid
    assert loaded.score(X, y) == estimator.score(X, y)


def test_unfitted_models_rejected(tmp_path):
    for model in (DecisionTreeRegressor(), RandomForestRegressor(),
                  HellingerEstimator()):
        with pytest.raises(PersistenceError, match="unfitted"):
            save_model(model, tmp_path / "nope.npz")


def test_unsupported_object_rejected(tmp_path):
    with pytest.raises(PersistenceError, match="cannot persist"):
        save_model(object(), tmp_path / "nope.npz")


def test_missing_file_raises(tmp_path):
    with pytest.raises(PersistenceError, match="no model file"):
        load_model(tmp_path / "absent.npz")


def test_corrupted_file_raises(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is not a numpy archive at all")
    with pytest.raises(PersistenceError, match="not a repro model file"):
        load_model(path)


def test_truncated_file_raises(tmp_path):
    X, y = _data(60, 4)
    tree = DecisionTreeRegressor(random_state=0).fit(X, y)
    path = save_model(tree, tmp_path / "tree.npz")
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(PersistenceError):
        load_model(path)


def test_foreign_npz_raises(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, values=np.arange(4))
    with pytest.raises(PersistenceError, match="not a repro model file"):
        load_model(path)


def test_wrong_version_raises(tmp_path):
    X, y = _data(60, 4)
    path = save_model(DecisionTreeRegressor().fit(X, y), tmp_path / "t.npz")
    data = dict(np.load(path, allow_pickle=False))
    meta = json.loads(bytes(data["meta"]).decode())
    meta["version"] = 999
    data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **data)
    with pytest.raises(PersistenceError, match="unsupported model version"):
        load_model(path)


def test_missing_array_raises(tmp_path):
    X, y = _data(60, 4)
    path = save_model(DecisionTreeRegressor().fit(X, y), tmp_path / "t.npz")
    data = dict(np.load(path, allow_pickle=False))
    del data["tree_threshold"]
    np.savez(path, **data)
    with pytest.raises(PersistenceError, match="missing array"):
        load_model(path)


def test_corrupted_child_pointers_raise(tmp_path):
    """Backward/cyclic child links must be rejected, not walked."""
    X, y = _data(60, 4)
    tree = DecisionTreeRegressor(random_state=0, max_depth=3).fit(X, y)
    path = save_model(tree, tmp_path / "t.npz")
    data = dict(np.load(path, allow_pickle=False))
    left = data["tree_left"].copy()
    internal = data["tree_feature"] >= 0
    left[np.nonzero(internal)[0][0]] = 0  # back-pointer -> cycle
    data["tree_left"] = left
    np.savez(path, **data)
    with pytest.raises(PersistenceError, match="bad child indices"):
        load_model(path)


def test_corrupted_feature_indices_raise(tmp_path):
    X, y = _data(60, 4)
    tree = DecisionTreeRegressor(random_state=0, max_depth=3).fit(X, y)
    path = save_model(tree, tmp_path / "t.npz")
    data = dict(np.load(path, allow_pickle=False))
    feature = data["tree_feature"].copy()
    feature[np.nonzero(feature >= 0)[0][0]] = 57  # > num_features
    data["tree_feature"] = feature
    np.savez(path, **data)
    with pytest.raises(PersistenceError, match="bad feature indices"):
        load_model(path)
