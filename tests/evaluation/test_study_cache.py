"""Stage caching: ``run_study(cache_dir=...)`` hit/miss/invalidation."""

import dataclasses
import json

import numpy as np
import pytest

import repro.evaluation.study as study_module
from repro.evaluation.persistence import (
    PersistenceError,
    load_dataset_cache,
    load_report_cache,
)
from repro.evaluation.study import StudyConfig, run_study

TINY_CONFIG = StudyConfig(
    algorithms=["ghz", "bv", "qft"],
    max_qubits=5,
    shots=200,
    seed=0,
    optimization_level=1,
    param_grid={
        "n_estimators": [8],
        "max_depth": [4],
        "min_samples_leaf": [1],
        "min_samples_split": [2],
    },
)


def _config(**overrides) -> StudyConfig:
    return dataclasses.replace(TINY_CONFIG, **overrides)


def test_cache_roundtrip_reproduces_study(tmp_path):
    cold = run_study(config=_config(cache_dir=str(tmp_path)))
    files = sorted(p.name for p in tmp_path.iterdir())
    assert any(name.startswith("dataset_Q20-A_") for name in files)
    assert any(name.startswith("dataset_Q20-B_") for name in files)
    assert any(name.startswith("report_Q20-A_") for name in files)
    assert any(name.startswith("report_Q20-B_") for name in files)

    warm = run_study(config=_config(cache_dir=str(tmp_path)))
    assert warm.correlations == cold.correlations
    assert warm.improvements == cold.improvements
    for name in cold.reports:
        assert np.array_equal(
            warm.reports[name].feature_importances,
            cold.reports[name].feature_importances,
        )
        assert warm.reports[name].best_params == cold.reports[name].best_params


def test_cache_hit_skips_build_and_train(tmp_path, monkeypatch):
    run_study(config=_config(cache_dir=str(tmp_path)))

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("stage re-ran despite a warm cache")

    monkeypatch.setattr(study_module, "build_dataset", boom)
    monkeypatch.setattr(study_module, "train_and_evaluate", boom)
    run_study(config=_config(cache_dir=str(tmp_path)))


@pytest.mark.parametrize("change", [
    {"shots": 300},
    {"seed": 1},
    {"optimization_level": 2},
    {"max_qubits": 6},
])
def test_changed_inputs_invalidate_dataset_cache(tmp_path, change):
    base = _config(cache_dir=str(tmp_path))
    changed = _config(cache_dir=str(tmp_path), **change)
    for name in ("Q20-A", "Q20-B"):
        assert base.dataset_fingerprint(name) != changed.dataset_fingerprint(name)
        assert base.report_fingerprint(name) != changed.report_fingerprint(name)


def test_changed_grid_invalidates_report_but_not_dataset(tmp_path):
    base = _config(cache_dir=str(tmp_path))
    changed = _config(
        cache_dir=str(tmp_path),
        param_grid={"n_estimators": [4], "max_depth": [2],
                    "min_samples_leaf": [1], "min_samples_split": [2]},
    )
    assert base.dataset_fingerprint("Q20-A") == changed.dataset_fingerprint("Q20-A")
    assert base.report_fingerprint("Q20-A") != changed.report_fingerprint("Q20-A")


def test_corrupted_cache_is_rebuilt(tmp_path):
    config = _config(cache_dir=str(tmp_path))
    cold = run_study(config=config)
    for path in tmp_path.iterdir():
        path.write_text("{ corrupted")
    rebuilt = run_study(config=config)
    assert rebuilt.correlations == cold.correlations
    # The rebuild must also have refreshed the cache files.
    for path in tmp_path.iterdir():
        json.loads(path.read_text())


def test_cache_loaders_reject_bad_files(tmp_path):
    missing = tmp_path / "absent.json"
    with pytest.raises(PersistenceError, match="no dataset cache"):
        load_dataset_cache(missing, "abc")
    with pytest.raises(PersistenceError, match="no report cache"):
        load_report_cache(missing, "abc")

    garbage = tmp_path / "garbage.json"
    garbage.write_text("not json at all {")
    with pytest.raises(PersistenceError, match="unreadable"):
        load_dataset_cache(garbage, "abc")
    with pytest.raises(PersistenceError, match="unreadable"):
        load_report_cache(garbage, "abc")

    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(PersistenceError, match="not a dataset cache"):
        load_dataset_cache(foreign, "abc")
    with pytest.raises(PersistenceError, match="not a report cache"):
        load_report_cache(foreign, "abc")


def test_stale_fingerprint_rejected(tmp_path):
    config = _config(cache_dir=str(tmp_path))
    run_study(config=config)
    dataset_path = next(
        p for p in tmp_path.iterdir() if p.name.startswith("dataset_Q20-A_")
    )
    with pytest.raises(PersistenceError, match="different inputs"):
        load_dataset_cache(dataset_path, "0123456789abcdef")


def test_run_study_cache_dir_argument_overrides(tmp_path):
    run_study(config=TINY_CONFIG, cache_dir=str(tmp_path))
    assert any(
        p.name.startswith("dataset_") for p in tmp_path.iterdir()
    )


def test_device_content_change_invalidates_cache():
    """A device edited in place (same name) must miss the cache."""
    from repro.hardware import make_q20a

    config = _config()
    original = make_q20a()
    drifted = make_q20a()
    for qubit in drifted.true_calibration.t2:
        drifted.true_calibration.t2[qubit] *= 0.5
    assert config.dataset_fingerprint(original) != config.dataset_fingerprint(drifted)
    assert config.report_fingerprint(original) != config.report_fingerprint(drifted)
    # Identical content hashes identically (stable across objects).
    assert config.dataset_fingerprint(original) == config.dataset_fingerprint(make_q20a())
