"""Unit tests for feature-importance grouping (Fig. 3 machinery)."""

import numpy as np
import pytest

from repro.evaluation.importance import (
    grouped_importances,
    importance_table,
    sorted_groups,
    top_features,
)
from repro.fom.features import FEATURE_GROUPS, FEATURE_NAMES, GROUP_ORDER


def test_grouped_importances_sum_preserved():
    importances = np.full(30, 1.0 / 30)
    grouped = grouped_importances(importances)
    assert sum(grouped.values()) == pytest.approx(1.0)
    assert set(grouped) == set(GROUP_ORDER)


def test_grouped_importances_assigns_to_right_group():
    importances = np.zeros(30)
    index = FEATURE_NAMES.index("liveness")
    importances[index] = 1.0
    grouped = grouped_importances(importances)
    assert grouped["Liveness"] == pytest.approx(1.0)
    assert grouped["Gate counts"] == pytest.approx(0.0)


def test_grouped_importances_validates_length():
    with pytest.raises(ValueError):
        grouped_importances(np.zeros(10))


def test_importance_table_rows():
    per_device = {
        "Q20-A": np.full(30, 1.0 / 30),
        "Q20-B": np.full(30, 1.0 / 30),
    }
    rows = importance_table(per_device)
    assert len(rows) == len(GROUP_ORDER)
    assert rows[0]["feature"] == GROUP_ORDER[0]
    assert "Q20-A" in rows[0]
    assert "Q20-B" in rows[0]


def test_top_features():
    importances = np.zeros(30)
    importances[3] = 0.5
    importances[7] = 0.3
    top = top_features(importances, k=2)
    assert top[0] == (FEATURE_NAMES[3], 0.5)
    assert top[1] == (FEATURE_NAMES[7], 0.3)


def test_sorted_groups_descending():
    grouped = {"A": 0.1, "B": 0.7, "C": 0.2}
    ordered = sorted_groups(grouped)
    assert [name for name, _ in ordered] == ["B", "C", "A"]


def test_every_feature_group_in_order():
    assert set(FEATURE_GROUPS.values()) == set(GROUP_ORDER)
