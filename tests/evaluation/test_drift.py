"""Tests for the calibration-drift study (repro.evaluation.drift)."""

import dataclasses

import numpy as np
import pytest

from repro.evaluation.artifacts import ArtifactStore
from repro.evaluation.drift import (
    DriftStudyConfig,
    calibration_distance,
    format_drift_table,
    run_drift_study,
)
from repro.evaluation.study import StudyConfig
from repro.hardware import resolve_device
from repro.hardware.calibration import drift_calibration

TINY_GRID = {
    "n_estimators": [8],
    "max_depth": [6],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}


def _tiny_config(cache_dir=None, **overrides) -> DriftStudyConfig:
    defaults = dict(
        device="zoo:line:6:clean:1",
        steps=2,
        refresh_trees=(2, 4),
        study=StudyConfig(
            max_qubits=6, shots=200, n_splits=2, param_grid=TINY_GRID
        ),
        cache_dir=cache_dir,
    )
    defaults.update(overrides)
    return DriftStudyConfig(**defaults)


@pytest.fixture(scope="module")
def cached_study(tmp_path_factory):
    """One cold run shared by the read-only tests below."""
    cache_dir = tmp_path_factory.mktemp("drift-cache")
    return str(cache_dir), run_drift_study(_tiny_config(str(cache_dir)))


def test_study_shape(cached_study):
    _, result = cached_study
    assert result.device_name == "zoo-line6-clean-s1"
    assert not result.from_cache
    assert not result.base_cached
    assert result.base_fit_s > 0
    assert -1.0 <= result.base_pearson <= 1.0
    assert len(result.steps) == 2
    for index, step in enumerate(result.steps, start=1):
        assert step.step == index
        assert step.device_name == f"zoo-line6-clean-s1-drift{index}"
        assert step.distance > 0
        assert not step.retrain_cached
        assert step.retrain_fit_s > 0
        assert step.fine_tune_fit_s > 0
        assert [point.trees for point in step.fine_tune] == [2, 4]
        for point in step.fine_tune:
            assert -1.0 <= point.pearson <= 1.0
            assert point.mae >= 0
        assert step.best_fine_tune().pearson == max(
            point.pearson for point in step.fine_tune
        )
    # The walk moves away from the training-time snapshot.
    assert result.steps[1].distance > result.steps[0].distance


def test_clean_tier_knobs_resolved(cached_study):
    _, result = cached_study
    assert result.fidelity_drift == pytest.approx(0.12)
    assert result.relaxation_drift == pytest.approx(0.5)


def test_warm_rerun_is_pure_cache_read(cached_study):
    cache_dir, cold = cached_study
    warm = run_drift_study(_tiny_config(cache_dir))
    assert warm.from_cache
    assert warm.base_pearson == cold.base_pearson
    assert len(warm.steps) == len(cold.steps)
    for warm_step, cold_step in zip(warm.steps, cold.steps):
        assert warm_step.stale_pearson == cold_step.stale_pearson
        assert warm_step.retrain_pearson == cold_step.retrain_pearson
        assert warm_step.distance == cold_step.distance
        assert [dataclasses.astuple(p) for p in warm_step.fine_tune] == [
            dataclasses.astuple(p) for p in cold_step.fine_tune
        ]


def test_drift_cache_entry_exists(cached_study):
    cache_dir, result = cached_study
    store = ArtifactStore(cache_dir)
    refs = store.find("drift", name=result.device_name)
    assert len(refs) == 1
    # Datasets for the base device and each step, reports for base + steps,
    # the base estimator — every intermediate stage is in the store too.
    assert len(store.find("dataset")) == 3
    assert len(store.find("report")) == 3
    assert len(store.find("estimator")) == 1


def test_changed_knob_misses_cache(cached_study):
    cache_dir, _ = cached_study
    bumped = run_drift_study(
        _tiny_config(cache_dir, drift_seed=1, steps=1)
    )
    # Different walk -> different fingerprint -> computed, not loaded;
    # but the base device's dataset/report/estimator stages still hit.
    assert not bumped.from_cache
    assert bumped.base_cached


def test_cold_runs_deterministic(tmp_path, cached_study):
    _, first = cached_study
    second = run_drift_study(_tiny_config(str(tmp_path / "other-cache")))
    assert not second.from_cache
    assert second.base_pearson == first.base_pearson
    for a, b in zip(second.steps, first.steps):
        assert a.stale_pearson == b.stale_pearson
        assert a.retrain_pearson == b.retrain_pearson
        assert [p.pearson for p in a.fine_tune] == [
            p.pearson for p in b.fine_tune
        ]


def test_runs_without_a_store(cached_study):
    _, cached = cached_study
    result = run_drift_study(_tiny_config(None, steps=1))
    assert not result.from_cache
    assert result.steps[0].stale_pearson == cached.steps[0].stale_pearson


def test_format_drift_table(cached_study):
    _, result = cached_study
    table = format_drift_table(result)
    assert "zoo-line6-clean-s1" in table
    assert "stale_r" in table and "retrain_r" in table
    assert "ft2_r" in table and "ft4_r" in table
    assert len(table.splitlines()) == 4 + len(result.steps)


def test_effective_drift_overrides():
    config = _tiny_config(None, fidelity_drift=0.05, drift_scale=2.0)
    fid, relax = config.effective_drift()
    assert fid == pytest.approx(0.10)        # override x scale
    assert relax == pytest.approx(1.0)       # clean tier 0.5 x scale
    builtin = DriftStudyConfig(device="q20a")
    assert builtin.effective_drift() == (0.3, 0.6)


def test_validation():
    with pytest.raises(ValueError):
        run_drift_study(_tiny_config(None, steps=0))
    with pytest.raises(ValueError):
        run_drift_study(_tiny_config(None, refresh_trees=()))
    with pytest.raises(ValueError):
        run_drift_study(_tiny_config(None, refresh_trees=(0, 2)))


def test_calibration_distance():
    device = resolve_device("q20a")
    calibration = device.true_calibration
    assert calibration_distance(calibration, calibration) == 0.0
    drifted = drift_calibration(
        calibration, np.random.default_rng(0),
        fidelity_drift=0.3, relaxation_drift=0.6,
    )
    assert calibration_distance(calibration, drifted) > 0
