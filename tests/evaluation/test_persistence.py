"""Unit tests for study persistence (JSON save/load)."""

import numpy as np
import pytest

from repro.evaluation.persistence import (
    load_datasets,
    load_study_data,
    save_study,
    study_to_dict,
)
from repro.evaluation.study import FOM_ORDER, StudyConfig, run_study

CONFIG = StudyConfig(
    algorithms=["ghz", "bv", "qft"],
    max_qubits=5,
    shots=200,
    seed=0,
    optimization_level=1,
    param_grid={
        "n_estimators": [10],
        "max_depth": [4],
        "min_samples_leaf": [1],
        "min_samples_split": [2],
    },
)


@pytest.fixture(scope="module")
def result():
    return run_study(config=CONFIG)


def test_roundtrip_correlations(result, tmp_path):
    path = save_study(result, tmp_path / "study.json")
    data = load_study_data(path)
    for fom in FOM_ORDER:
        for column, value in result.correlations[fom].items():
            assert data["correlations"][fom][column] == pytest.approx(value)
    assert data["device_names"] == result.device_names


def test_roundtrip_datasets(result, tmp_path):
    path = save_study(result, tmp_path / "study.json")
    datasets = load_datasets(path)
    for name, original in result.datasets.items():
        restored = datasets[name]
        assert len(restored) == len(original)
        assert np.allclose(restored.X, original.X)
        assert np.allclose(restored.y, original.y)
        for fom in FOM_ORDER:
            assert np.allclose(
                restored.fom_column(fom), original.fom_column(fom)
            )


def test_restored_dataset_trains_model(result, tmp_path):
    from repro.ml import RandomForestRegressor, pearson_r

    path = save_study(result, tmp_path / "study.json")
    datasets = load_datasets(path)
    data = next(iter(datasets.values()))
    model = RandomForestRegressor(n_estimators=10, random_state=0)
    model.fit(data.X, data.y)
    assert pearson_r(data.y, model.predict(data.X)) > 0.5


def test_serialization_is_json_compatible(result):
    import json

    text = json.dumps(study_to_dict(result))
    assert "correlations" in text
