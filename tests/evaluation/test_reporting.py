"""Unit tests for ASCII report rendering."""

import numpy as np

from repro.evaluation.reporting import format_fig3, format_series, format_table_i
from repro.evaluation.study import FOM_ORDER, PROPOSED_LABEL, StudyResult
from repro.predictor.dataset import CircuitDataset
from repro.predictor.estimator import EstimatorReport


def _fake_result():
    correlations = {}
    for index, fom in enumerate(FOM_ORDER):
        base = 0.4 + 0.05 * index
        correlations[fom] = {
            "Q20-A": base, "Q20-B": base + 0.1, "Combined": base + 0.05,
        }
    correlations[PROPOSED_LABEL] = {
        "Q20-A": 0.88, "Q20-B": 0.94, "Combined": 0.91,
    }
    reports = {
        name: EstimatorReport(
            device_name=name,
            test_pearson=correlations[PROPOSED_LABEL][name],
            train_pearson=0.99,
            cv_score=0.9,
            best_params={},
            feature_importances=np.full(30, 1 / 30),
            y_test=np.zeros(3),
            y_test_pred=np.zeros(3),
        )
        for name in ("Q20-A", "Q20-B")
    }
    datasets = {
        name: CircuitDataset(device_name=name) for name in ("Q20-A", "Q20-B")
    }
    result = StudyResult(
        device_names=["Q20-A", "Q20-B"],
        correlations=correlations,
        reports=reports,
        datasets=datasets,
    )
    from repro.evaluation.study import compute_improvements

    result.improvements = compute_improvements(result)
    return result


def test_table_i_contains_all_rows():
    text = format_table_i(_fake_result())
    assert "TABLE I" in text
    for fom in FOM_ORDER + [PROPOSED_LABEL]:
        assert fom in text
    assert "0.88" in text
    assert "0.94" in text
    assert "Improvement" in text


def test_fig3_renders_bars():
    per_device = {
        "Q20-A": np.full(30, 1 / 30),
        "Q20-B": np.linspace(0.0, 1.0, 30) / np.linspace(0.0, 1.0, 30).sum(),
    }
    text = format_fig3(per_device)
    assert "Fig. 3" in text
    assert "Liveness" in text
    assert "#" in text


def test_format_series_alignment():
    text = format_series(
        "Figure X", "qubits", [2, 3, 4],
        {"metric_a": [0.1, 0.2, 0.3], "metric_b": [1.0, 2.0, 3.0]},
    )
    lines = text.splitlines()
    assert lines[0] == "Figure X"
    assert "metric_a" in lines[2]
    assert len(lines) == 4 + 3
