"""The unified artifact store: round-trips, invalidation, silent rebuild.

Also pins backward compatibility: cache directories written by the
pre-refactor ad-hoc schemes (``save_dataset_cache`` / ``save_report_cache``
/ ``save_model`` at the original file names) must keep hitting through
the store, with bit-identical contents.
"""

import numpy as np
import pytest

from repro.evaluation.artifacts import ARTIFACT_KINDS, ArtifactStore
from repro.evaluation.persistence import (
    save_dataset_cache,
    save_model,
    save_report_cache,
)
from repro.ml.forest import RandomForestRegressor
from repro.predictor.dataset import CircuitDataset, DatasetEntry
from repro.predictor.estimator import EstimatorReport, HellingerEstimator


def make_dataset(device_name="Q20-A", entries=3):
    dataset = CircuitDataset(device_name=device_name)
    rng = np.random.default_rng(0)
    for index in range(entries):
        dataset.entries.append(
            DatasetEntry(
                name=f"ghz_{index + 2}",
                algorithm="ghz",
                num_qubits=index + 2,
                features=rng.uniform(size=30),
                label=float(rng.uniform()),
                fom_values={"Number of gates": float(index + 4)},
                compiled_depth=10 + index,
                compiled_two_qubit_gates=index + 1,
                success_probability=0.9,
            )
        )
    return dataset


def make_report(device_name="Q20-A"):
    rng = np.random.default_rng(1)
    return EstimatorReport(
        device_name=device_name,
        test_pearson=0.9,
        train_pearson=0.95,
        cv_score=0.85,
        best_params={"n_estimators": 8},
        feature_importances=rng.uniform(size=30),
        y_test=rng.uniform(size=4),
        y_test_pred=rng.uniform(size=4),
        test_indices=np.array([1, 3, 5, 7]),
    )


def make_estimator():
    rng = np.random.default_rng(2)
    X = rng.uniform(size=(40, 30))
    y = rng.uniform(size=40)
    estimator = HellingerEstimator(
        param_grid={
            "n_estimators": [4],
            "max_depth": [3],
            "min_samples_leaf": [1],
            "min_samples_split": [2],
        },
        seed=0,
    )
    estimator.fit(X, y)
    return estimator, X


def assert_datasets_equal(a, b):
    assert a.device_name == b.device_name
    assert len(a) == len(b)
    for left, right in zip(a.entries, b.entries):
        assert left.name == right.name
        assert np.array_equal(left.features, right.features)
        assert left.label == right.label
        assert left.fom_values == right.fom_values


def test_dataset_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path)
    dataset = make_dataset()
    path = store.put("dataset", dataset, "Q20-A", "f" * 16)
    assert path.name == f"dataset_Q20-A_{'f' * 16}.json"
    assert_datasets_equal(store.get("dataset", "Q20-A", "f" * 16), dataset)


def test_report_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path)
    report = make_report()
    store.put("report", report, "Q20-A", "ab")
    loaded = store.get("report", "Q20-A", "ab")
    assert loaded.test_pearson == report.test_pearson
    assert np.array_equal(loaded.feature_importances, report.feature_importances)
    assert np.array_equal(loaded.test_indices, report.test_indices)


def test_estimator_roundtrip_predicts_identically(tmp_path):
    store = ArtifactStore(tmp_path)
    estimator, X = make_estimator()
    store.put("estimator", estimator, "Q20-A", "cd")
    loaded = store.get("estimator", "Q20-A", "cd")
    assert isinstance(loaded, HellingerEstimator)
    assert np.array_equal(loaded.predict(X), estimator.predict(X))


def test_fingerprint_mismatch_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("dataset", make_dataset(), "Q20-A", "old-fingerprint")
    assert store.get("dataset", "Q20-A", "new-fingerprint") is None


def test_missing_entry_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    for kind in ARTIFACT_KINDS:
        assert store.get(kind, "Q20-A", "nope") is None


def test_corrupt_truncated_and_foreign_entries_rebuild_silently(tmp_path):
    store = ArtifactStore(tmp_path)
    dataset = make_dataset()
    fingerprint = "a1b2"
    path = store.put("dataset", dataset, "Q20-A", fingerprint)

    path.write_text("{ corrupted json")
    assert store.get("dataset", "Q20-A", fingerprint) is None

    full = store.put("dataset", dataset, "Q20-A", fingerprint)
    full.write_text(full.read_text()[: len(full.read_text()) // 2])  # truncated
    assert store.get("dataset", "Q20-A", fingerprint) is None

    path.write_text('{"format": "another-tool-entirely"}')
    assert store.get("dataset", "Q20-A", fingerprint) is None

    # A foreign artifact of the wrong *kind* at the right path.
    report_bytes = store.put("report", make_report(), "X", "y").read_bytes()
    path.write_bytes(report_bytes)
    assert store.get("dataset", "Q20-A", fingerprint) is None

    # Rebuild-and-put over the bad entry restores service.
    store.put("dataset", dataset, "Q20-A", fingerprint)
    assert_datasets_equal(store.get("dataset", "Q20-A", fingerprint), dataset)


def test_estimator_entry_of_wrong_model_kind_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    rng = np.random.default_rng(3)
    forest = RandomForestRegressor(n_estimators=3, random_state=0)
    forest.fit(rng.uniform(size=(20, 5)), rng.uniform(size=20))
    save_model(forest, store.path("estimator", "Q20-A", "ef"))
    assert store.get("estimator", "Q20-A", "ef") is None


def test_fetch_builds_once_and_reports_hits(tmp_path):
    store = ArtifactStore(tmp_path)
    dataset = make_dataset()
    calls = {"build": 0, "hit": 0}

    def build():
        calls["build"] += 1
        return dataset

    def on_hit():
        calls["hit"] += 1

    first = store.fetch("dataset", "Q20-A", "fp", build, on_hit=on_hit)
    second = store.fetch("dataset", "Q20-A", "fp", build, on_hit=on_hit)
    assert calls == {"build": 1, "hit": 1}
    assert_datasets_equal(first, second)


def test_unknown_kind_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError, match="unknown artifact kind"):
        store.get("weights", "x", "y")
    with pytest.raises(ValueError, match="unknown artifact kind"):
        store.put("weights", object(), "x", "y")


def test_coerce_accepts_paths_stores_and_none(tmp_path):
    assert ArtifactStore.coerce(None) is None
    store = ArtifactStore.coerce(str(tmp_path))
    assert isinstance(store, ArtifactStore)
    assert ArtifactStore.coerce(store) is store


def test_entries_enumeration(tmp_path):
    store = ArtifactStore(tmp_path)
    assert list(store.entries()) == []
    store.put("dataset", make_dataset(), "Q20-A", "f1")
    store.put("report", make_report(), "Q20-A", "f2")
    estimator, _ = make_estimator()
    store.put("estimator", estimator, "Q20-A", "f2")
    kinds = [kind for kind, _ in store.entries()]
    assert sorted(kinds) == ["dataset", "estimator", "report"]
    assert [kind for kind, _ in store.entries("report")] == ["report"]


# ----------------------------------------------------------------------
# Backward compatibility with the pre-refactor ad-hoc cache schemes.


def test_pre_refactor_cache_files_keep_hitting(tmp_path):
    """Entries written with the old per-scheme helpers at the old file
    names must be found — bit-identical — through the store."""
    dataset = make_dataset()
    report = make_report()
    estimator, X = make_estimator()
    fp_data, fp_report = "0123456789abcdef", "fedcba9876543210"

    # The exact calls (and file names) run_study/run_cross_device_study
    # made before the ArtifactStore existed.
    save_dataset_cache(
        dataset, tmp_path / f"dataset_Q20-A_{fp_data}.json", fp_data
    )
    save_report_cache(
        report, tmp_path / f"report_Q20-A_{fp_report}.json", fp_report
    )
    save_model(
        estimator, tmp_path / f"transfer-estimator_Q20-A_{fp_report}.npz"
    )

    store = ArtifactStore(tmp_path)
    assert_datasets_equal(store.get("dataset", "Q20-A", fp_data), dataset)
    loaded_report = store.get("report", "Q20-A", fp_report)
    assert np.array_equal(
        loaded_report.feature_importances, report.feature_importances
    )
    loaded_estimator = store.get("estimator", "Q20-A", fp_report)
    assert np.array_equal(loaded_estimator.predict(X), estimator.predict(X))


def test_store_writes_the_pre_refactor_file_names(tmp_path):
    """The store's layout IS the old layout (old readers keep working)."""
    store = ArtifactStore(tmp_path)
    assert (
        store.path("dataset", "Q20-B", "aa").name == "dataset_Q20-B_aa.json"
    )
    assert store.path("report", "Q20-B", "bb").name == "report_Q20-B_bb.json"
    assert (
        store.path("estimator", "Q20-B", "cc").name
        == "transfer-estimator_Q20-B_cc.npz"
    )


def test_drift_cache_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path)
    result = {
        "device_name": "zoo-line6",
        "base_pearson": 0.9,
        "steps": [{"step": 1, "stale_pearson": 0.7, "fine_tune": []}],
    }
    store.put("drift", result, "zoo-line6", "fp1")
    assert store.get("drift", "zoo-line6", "fp1") == result
    path = store.path("drift", "zoo-line6", "fp1")
    assert path.name == "drift_zoo-line6_fp1.json"


def test_drift_cache_invalidation(tmp_path):
    import json

    store = ArtifactStore(tmp_path)
    result = {"steps": []}
    store.put("drift", result, "dev", "fp1")
    # Stale fingerprint, corrupt payload, and a foreign format are all
    # silent misses.
    assert store.get("drift", "dev", "other-fp") is None
    path = store.path("drift", "dev", "fp1")
    path.write_text("{not json")
    assert store.get("drift", "dev", "fp1") is None
    path.write_text(json.dumps({"format": "something-else"}))
    assert store.get("drift", "dev", "fp1") is None
    # A payload without a steps list is rejected even if tagged right.
    store.put("drift", result, "dev", "fp1")
    payload = json.loads(path.read_text())
    del payload["steps"]
    path.write_text(json.dumps(payload))
    assert store.get("drift", "dev", "fp1") is None
