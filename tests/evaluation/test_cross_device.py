"""Unit tests for the cross-device (transfer) study."""

import numpy as np
import pytest

from repro.evaluation import (
    FOM_ORDER,
    PROPOSED_LABEL,
    StudyConfig,
    format_transfer_table,
    run_cross_device_study,
)
from repro.evaluation.study import build_device_datasets
from repro.hardware import make_zoo_device

TINY_CONFIG_KWARGS = dict(
    algorithms=["ghz", "qft", "dj", "vqe"],
    max_qubits=5,
    shots=250,
    seed=0,
    param_grid={
        "n_estimators": [15],
        "max_depth": [None, 5],
        "min_samples_leaf": [1],
        "min_samples_split": [2],
    },
)


@pytest.fixture(scope="module")
def tiny_result():
    train = make_zoo_device("grid", 8, tier="noisy", seed=0)
    evals = [
        make_zoo_device("ring", 8, seed=0),
        make_zoo_device("random", 8, seed=2),
    ]
    return run_cross_device_study(
        train, evals, config=StudyConfig(**TINY_CONFIG_KWARGS)
    )


def test_result_shape(tiny_result):
    assert tiny_result.train_device == "zoo-grid8-noisy-s0"
    assert tiny_result.eval_device_names == [
        "zoo-ring8-typical-s0", "zoo-random8-typical-s2",
    ]
    for fom in FOM_ORDER + [PROPOSED_LABEL]:
        for name in tiny_result.device_names:
            value = tiny_result.correlations[fom][name]
            assert 0.0 <= value <= 1.0, (fom, name)
    rows = tiny_result.table_rows()
    assert [row[0] for row in rows] == FOM_ORDER + [PROPOSED_LABEL]
    assert all(len(values) == 3 for _, values in rows)


def test_transfer_scores_use_the_trained_model_on_heldout_programs(tiny_result):
    """Recomputing a transfer column from the returned estimator matches."""
    from repro.ml.metrics import pearson_r

    train_data = tiny_result.datasets[tiny_result.train_device]
    heldout = {
        train_data.entries[int(i)].name
        for i in tiny_result.report.test_indices
    }
    name = tiny_result.eval_device_names[0]
    data = tiny_result.datasets[name]
    rows = [i for i, entry in enumerate(data.entries) if entry.name in heldout]
    assert len(rows) >= 2
    expected = abs(
        pearson_r(data.y[rows], tiny_result.estimator.predict(data.X[rows]))
    )
    assert tiny_result.correlations[PROPOSED_LABEL][name] == pytest.approx(expected)


def test_single_model_scores_every_column(tiny_result):
    """The in-domain column comes from the same forest as the transfer ones."""
    from repro.ml.metrics import pearson_r

    train_data = tiny_result.datasets[tiny_result.train_device]
    test_idx = [int(i) for i in tiny_result.report.test_indices]
    recomputed = abs(pearson_r(
        train_data.y[test_idx],
        tiny_result.estimator.predict(train_data.X[test_idx]),
    ))
    assert tiny_result.correlations[PROPOSED_LABEL][
        tiny_result.train_device
    ] == pytest.approx(recomputed)


def test_transfer_scored_on_heldout_subset_only(tiny_result):
    """The proposed row never scores programs seen during training."""
    n_heldout = len(tiny_result.report.test_indices)
    for name in tiny_result.device_names:
        support = tiny_result.transfer_support[name]
        assert support <= n_heldout
        assert support < len(tiny_result.datasets[name])


def test_transfer_gap_definition(tiny_result):
    name = tiny_result.eval_device_names[1]
    proposed = tiny_result.correlations[PROPOSED_LABEL]
    assert tiny_result.transfer_gap(name) == pytest.approx(
        proposed[tiny_result.train_device] - proposed[name]
    )


def test_format_transfer_table(tiny_result):
    text = format_transfer_table(tiny_result)
    assert "Cross-device transfer" in text
    assert "(train)" in text
    assert "Transfer gap" in text
    for name in tiny_result.device_names:
        assert name in text


def test_cache_round_trip_is_bit_identical(tmp_path):
    train = make_zoo_device("grid", 8, tier="noisy", seed=0)
    evals = [make_zoo_device("ring", 8, seed=0)]
    config = StudyConfig(**TINY_CONFIG_KWARGS)
    cold = run_cross_device_study(
        train, evals, config=config, cache_dir=str(tmp_path)
    )
    # Datasets, report, and train-split estimator are all checkpointed.
    kinds = {path.name.split("_")[0] for path in tmp_path.iterdir()}
    assert kinds == {"dataset", "report", "transfer-estimator"}
    warm = run_cross_device_study(
        train, evals, config=config, cache_dir=str(tmp_path)
    )
    for fom in FOM_ORDER + [PROPOSED_LABEL]:
        for name in cold.device_names:
            assert warm.correlations[fom][name] == cold.correlations[fom][name]
    assert np.array_equal(
        warm.estimator.predict(cold.datasets[evals[0].name].X),
        cold.estimator.predict(cold.datasets[evals[0].name].X),
    )


def test_rejects_empty_and_duplicate_devices():
    train = make_zoo_device("ring", 8, seed=0)
    with pytest.raises(ValueError, match="at least one eval device"):
        run_cross_device_study(train, [], config=StudyConfig(**TINY_CONFIG_KWARGS))
    with pytest.raises(ValueError, match="duplicate device names"):
        run_cross_device_study(
            train, [make_zoo_device("ring", 8, seed=0)],
            config=StudyConfig(**TINY_CONFIG_KWARGS),
        )


def test_datasets_capped_at_device_width():
    """A small device gets the widest suite it can hold, not a crash."""
    config = StudyConfig(**{**TINY_CONFIG_KWARGS, "max_qubits": 6})
    small = make_zoo_device("line", 4, seed=0)
    datasets = build_device_datasets([small], config)
    assert max(entry.num_qubits for entry in datasets[small.name].entries) <= 4


def test_datasets_reject_devices_below_min_qubits():
    config = StudyConfig(**{**TINY_CONFIG_KWARGS, "min_qubits": 5})
    tiny = make_zoo_device("line", 3, seed=0)
    with pytest.raises(ValueError, match="below the study's min_qubits"):
        build_device_datasets([tiny], config)
