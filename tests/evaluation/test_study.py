"""Integration tests for the correlation study (reduced configuration)."""

import numpy as np
import pytest

from repro.evaluation.study import (
    FOM_ORDER,
    PROPOSED_LABEL,
    StudyConfig,
    compute_improvements,
    run_study,
)

SMALL_CONFIG = StudyConfig(
    algorithms=["ghz", "bv", "qft", "wstate", "vqe", "qaoa"],
    max_qubits=7,
    shots=500,
    seed=0,
    optimization_level=1,
    param_grid={
        "n_estimators": [20],
        "max_depth": [None],
        "min_samples_leaf": [1],
        "min_samples_split": [2],
    },
)


@pytest.fixture(scope="module")
def result():
    return run_study(config=SMALL_CONFIG)


def test_all_foms_scored(result):
    for fom in FOM_ORDER + [PROPOSED_LABEL]:
        for column in ["Q20-A", "Q20-B", "Combined"]:
            value = result.correlations[fom][column]
            assert 0.0 <= value <= 1.0


def test_proposed_beats_established(result):
    for column in ["Q20-A", "Q20-B", "Combined"]:
        established_best = max(
            result.correlations[fom][column] for fom in FOM_ORDER
        )
        assert result.correlations[PROPOSED_LABEL][column] > established_best - 0.1


def test_improvements_positive(result):
    for column, value in result.improvements.items():
        assert value > 0, column


def test_table_rows_structure(result):
    rows = result.table_rows()
    assert len(rows) == 5
    assert rows[0][0] == "Number of gates"
    assert rows[-1][0] == PROPOSED_LABEL
    assert all(len(values) == 3 for _, values in rows)


def test_reports_have_importances(result):
    for name in ("Q20-A", "Q20-B"):
        report = result.reports[name]
        assert report.feature_importances.shape == (30,)
        assert report.feature_importances.sum() == pytest.approx(1.0)


def test_datasets_nonempty_and_filtered(result):
    for name in ("Q20-A", "Q20-B"):
        data = result.datasets[name]
        assert len(data) > 10
        assert all(e.compiled_depth < 1000 for e in data.entries)


def test_compute_improvements_formula(result):
    improvements = compute_improvements(result)
    for column in ["Q20-A", "Q20-B", "Combined"]:
        established = np.mean(
            [result.correlations[fom][column] for fom in FOM_ORDER]
        )
        proposed = result.correlations[PROPOSED_LABEL][column]
        expected = (proposed / established - 1.0) * 100.0
        assert improvements[column] == pytest.approx(expected)


def test_build_device_datasets_empty_mapping():
    from repro.evaluation.study import build_device_datasets

    assert build_device_datasets({}, SMALL_CONFIG, cache=None) == {}


def test_study_deterministic():
    a = run_study(config=SMALL_CONFIG)
    b = run_study(config=SMALL_CONFIG)
    for fom in FOM_ORDER:
        assert a.correlations[fom] == b.correlations[fom]


# ----------------------------------------------------------------------
# optimization_level="search": predictor-guided study compilation.


def _search_estimator():
    from repro.ml.forest import RandomForestRegressor

    rng = np.random.default_rng(0)
    forest = RandomForestRegressor(
        n_estimators=5, random_state=0, max_features="sqrt"
    )
    forest.fit(rng.uniform(size=(40, 30)), rng.uniform(size=40))
    return forest


def test_search_fingerprint_only_when_active():
    base = StudyConfig(max_qubits=4, algorithms=["ghz"], shots=200)
    # Search fields on an int-level config must not move the fingerprint:
    # every pre-search cache entry stays addressable.
    decoy = StudyConfig(
        max_qubits=4, algorithms=["ghz"], shots=200,
        search_estimator=_search_estimator(),
        search_opts={"beam_width": 9},
    )
    assert base.dataset_fingerprint("Q20-A") == decoy.dataset_fingerprint("Q20-A")
    active = StudyConfig(
        max_qubits=4, algorithms=["ghz"], shots=200,
        optimization_level="search", search_estimator=_search_estimator(),
        search_opts={"beam_width": 2, "generations": 1},
    )
    fingerprint = active.dataset_fingerprint("Q20-A")
    assert fingerprint != base.dataset_fingerprint("Q20-A")
    # ... and the search knobs are part of the key.
    other = StudyConfig(
        max_qubits=4, algorithms=["ghz"], shots=200,
        optimization_level="search", search_estimator=_search_estimator(),
        search_opts={"beam_width": 3, "generations": 1},
    )
    assert other.dataset_fingerprint("Q20-A") != fingerprint


def test_build_device_datasets_search_level():
    from repro.evaluation.study import build_device_datasets
    from repro.hardware.iqm import make_q20a

    config = StudyConfig(
        max_qubits=4, algorithms=["ghz", "bv"], shots=200,
        optimization_level="search", search_estimator=_search_estimator(),
        search_opts={"beam_width": 2, "generations": 1},
        workers_mode="thread",
    )
    datasets = build_device_datasets([make_q20a()], config)
    data = datasets["Q20-A"]
    assert len(data) > 0
