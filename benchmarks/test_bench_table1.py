"""Experiment E1 + E2 — Table I: Pearson correlation with Hellinger distance.

Regenerates the paper's Table I: the correlation of each established figure
of merit (number of gates, circuit depth, expected fidelity, ESP) and of the
proposed random-forest figure of merit with the measured Hellinger distance,
per QPU and combined, plus the improvement percentages of Section V-C.

Shape assertions encode the paper's findings:
* hardware-aware FoMs beat hardware-agnostic ones,
* ESP does *not* beat plain expected fidelity (stale T1/T2, Section V-B),
* the proposed approach beats every established FoM on every column,
* the average improvement is large and positive (paper: +49% combined).
"""

from conftest import write_artifact

from repro.evaluation import FOM_ORDER, PROPOSED_LABEL, format_table_i


def test_table1_correlations(study_result, benchmark):
    result = benchmark.pedantic(lambda: study_result, rounds=1, iterations=1)
    table = format_table_i(result)
    write_artifact("table1.txt", table)

    correlations = result.correlations
    for column in result.device_names + ["Combined"]:
        gates = correlations["Number of gates"][column]
        depth = correlations["Circuit depth"][column]
        fidelity = correlations["Expected fidelity"][column]
        esp = correlations["ESP"][column]
        proposed = correlations[PROPOSED_LABEL][column]

        # Hardware-aware beats hardware-agnostic.
        assert fidelity > gates, column
        assert fidelity > depth, column
        # The paper's surprise: the more complex ESP does not beat plain
        # expected fidelity.
        assert esp <= fidelity + 0.02, column
        # The proposed figure of merit dominates everything.
        for fom in FOM_ORDER:
            assert proposed > correlations[fom][column], (column, fom)
        assert proposed > 0.75, column

    # Improvement percentages (paper: +62%/+38%/+49%).
    for column, value in result.improvements.items():
        assert value > 20.0, column

    # Both devices kept a usable number of circuits after the depth filter.
    for name in result.device_names:
        assert len(result.datasets[name]) > 100


def test_table1_gate_count_depth_similarity(study_result):
    """Gates and depth correlate almost identically (they are coupled)."""
    correlations = study_result.correlations
    for column in study_result.device_names + ["Combined"]:
        gates = correlations["Number of gates"][column]
        depth = correlations["Circuit depth"][column]
        assert abs(gates - depth) < 0.08, column
