"""Throughput microbenchmarks of the substrates.

Not a paper artefact — these keep the reproduction's moving parts honest:
statevector simulation, compilation, noisy execution, feature extraction,
and forest training all have to be fast enough to sustain the paper-scale
study (650+ compile/execute/label passes).
"""

import numpy as np
import pytest

from repro.bench.algorithms import qft
from repro.circuits.random import random_circuit
from repro.compiler import compile_circuit
from repro.fom import feature_vector
from repro.hardware import make_q20a
from repro.ml import RandomForestRegressor
from repro.simulation import QPUExecutor, ideal_distribution
from repro.simulation.statevector import simulate_statevector


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def test_perf_statevector_12q(benchmark):
    circuit = random_circuit(12, 30, seed=0)
    benchmark(lambda: simulate_statevector(circuit))


def test_perf_statevector_qft16(benchmark):
    circuit = qft(16)
    benchmark.pedantic(
        lambda: ideal_distribution(circuit, dtype=np.complex64),
        rounds=2, iterations=1,
    )


def test_perf_compile_level3(benchmark, device):
    circuit = random_circuit(12, 20, seed=1, measure=True)
    benchmark.pedantic(
        lambda: compile_circuit(circuit, device, optimization_level=3, seed=0),
        rounds=3, iterations=1,
    )


def test_perf_noisy_execution(benchmark, device):
    circuit = random_circuit(10, 15, seed=2, measure=True)
    compiled = compile_circuit(circuit, device, optimization_level=2, seed=0)
    ideal = ideal_distribution(compiled.circuit)
    executor = QPUExecutor(device)
    benchmark(
        lambda: executor.execute(
            compiled.circuit, shots=2000, seed=3, ideal=ideal
        )
    )


def test_perf_feature_extraction(benchmark, device):
    circuit = random_circuit(15, 40, seed=4, measure=True)
    compiled = compile_circuit(circuit, device, optimization_level=2, seed=0)
    benchmark(lambda: feature_vector(compiled.circuit))


def test_perf_forest_training(benchmark):
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(250, 30))
    y = rng.uniform(size=250)
    benchmark.pedantic(
        lambda: RandomForestRegressor(
            n_estimators=50, random_state=0, max_features="sqrt"
        ).fit(X, y),
        rounds=2, iterations=1,
    )
