"""Throughput microbenchmarks of the substrates.

Not a paper artefact — these keep the reproduction's moving parts honest:
statevector simulation, compilation, noisy execution, feature extraction,
and forest training all have to be fast enough to sustain the paper-scale
study (650+ compile/execute/label passes).
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.bench.algorithms import ghz, qft
from repro.bench.suite import build_suite, compile_suite
from repro.circuits.random import random_circuit
from repro.compiler import clear_compile_cache, compile_circuit
from repro.compiler.compile import compile_batch
from repro.evaluation.persistence import save_model
from repro.fom import feature_matrix, feature_vector
from repro.hardware import make_q20a, make_zoo_device
from repro.ml import RandomForestRegressor, grid_search
from repro.predictor import FomService, HellingerEstimator
from repro.predictor.estimator import DEFAULT_PARAM_GRID
from repro.simulation import QPUExecutor, ideal_distribution
from repro.simulation.statevector import simulate_statevector


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def test_perf_statevector_12q(benchmark):
    circuit = random_circuit(12, 30, seed=0)
    benchmark(lambda: simulate_statevector(circuit))


def test_perf_statevector_qft16(benchmark):
    circuit = qft(16)
    benchmark.pedantic(
        lambda: ideal_distribution(circuit, dtype=np.complex64),
        rounds=2, iterations=1,
    )


def test_perf_compile_level3(benchmark, device):
    circuit = random_circuit(12, 20, seed=1, measure=True)
    benchmark.pedantic(
        lambda: compile_circuit(circuit, device, optimization_level=3, seed=0),
        rounds=3, iterations=1,
    )


def test_perf_compile_level3_suite(benchmark, device):
    """The full 2-20-qubit benchmark suite at optimization level 3.

    This is the dataset-generation compile workload (the dominant
    `run_study` cost since PR 1 made simulation fast).  The cache is
    cleared each round, so this measures *cold* compilation; the warm
    path is covered by `test_perf_compile_level3_suite_warm`.
    """
    suite = build_suite(min_qubits=2, max_qubits=20)

    def run():
        # max_workers=1: a sequential pass gives the stablest timing for
        # the regression gate; the pooled wall-clock has its own entry
        # (test_perf_compile_level3_suite_process).
        clear_compile_cache()
        return compile_suite(
            suite, device, optimization_level=3, seed=0, max_workers=1
        )

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_perf_compile_level3_suite_warm(benchmark, device):
    """Warm recompilation of the full suite (pass-cache hit path)."""
    suite = build_suite(min_qubits=2, max_qubits=20)
    clear_compile_cache()
    compile_suite(suite, device, optimization_level=3, seed=0, max_workers=1)
    benchmark.pedantic(
        lambda: compile_suite(
            suite, device, optimization_level=3, seed=0, max_workers=1
        ),
        rounds=2, iterations=1,
    )


def test_perf_compile_level3_suite_process(benchmark, device):
    """Cold full-suite level-3 compile through the 4-worker process pool.

    The PR 6 headline: compilation is pure Python, so the thread pool
    never beat sequential — the spawn-based process pool is what makes
    ``max_workers`` buy wall-clock on a multi-core box.  Output is
    bit-identical to the sequential pass (pinned by the golden-digest
    tests); this entry tracks the pooled wall-clock, spawn overhead
    included.  On a single-core runner it degrades to pure overhead —
    the scaling assertion lives in
    ``test_process_pool_compile_scales_on_multicore``.
    """
    suite = build_suite(min_qubits=2, max_qubits=20)

    def run():
        clear_compile_cache()
        return compile_suite(
            suite, device, optimization_level=3, seed=0,
            max_workers=4, workers_mode="process",
        )

    benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the >=2.5x scaling headline needs at least 4 physical cores",
)
def test_process_pool_compile_scales_on_multicore(device):
    """PR 6 acceptance: >=2.5x on 4 process workers for the cold suite
    compile (near-linear minus spawn/serialization overhead)."""
    suite = build_suite(min_qubits=2, max_qubits=20)

    def timed(**kwargs):
        clear_compile_cache()
        start = time.perf_counter()
        compile_suite(suite, device, optimization_level=3, seed=0, **kwargs)
        return time.perf_counter() - start

    sequential = timed(max_workers=1)
    pooled = timed(max_workers=4, workers_mode="process")
    assert sequential / pooled >= 2.5, (sequential, pooled)


def test_perf_compile_heavy_hex(benchmark):
    """Level-3 compilation on a non-grid coupling (device-zoo smoke bench).

    Heavy-hex is the sparsest realistic topology in the zoo (max degree
    3), so routing works hardest here — this guards the router/layout
    fast paths against regressions that only show off the square grid.
    """
    device = make_zoo_device("heavy_hex", 16, tier="typical", seed=0)
    circuits = [ghz(12), qft(10), random_circuit(12, 20, seed=5, measure=True)]

    def run():
        clear_compile_cache()
        return compile_batch(
            circuits, device, optimization_level=3, seed=0, max_workers=1
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_perf_noisy_execution(benchmark, device):
    circuit = random_circuit(10, 15, seed=2, measure=True)
    compiled = compile_circuit(circuit, device, optimization_level=2, seed=0)
    ideal = ideal_distribution(compiled.circuit)
    executor = QPUExecutor(device)
    benchmark(
        lambda: executor.execute(
            compiled.circuit, shots=2000, seed=3, ideal=ideal
        )
    )


def test_perf_feature_extraction(benchmark, device):
    circuit = random_circuit(15, 40, seed=4, measure=True)
    compiled = compile_circuit(circuit, device, optimization_level=2, seed=0)
    benchmark(lambda: feature_vector(compiled.circuit))


def _serving_suite():
    """The 120-circuit serving workload (2-11-qubit suite prefix)."""
    suite = build_suite(min_qubits=2, max_qubits=11)[:120]
    return suite


def _tiny_estimator():
    rng = np.random.default_rng(0)
    estimator = HellingerEstimator(
        param_grid={
            "n_estimators": [25],
            "max_depth": [None],
            "min_samples_leaf": [1],
            "min_samples_split": [2],
        },
        seed=0,
    )
    estimator.fit(rng.uniform(size=(60, 30)), rng.uniform(size=60))
    return estimator


def test_perf_feature_matrix(benchmark, device):
    """Single-pass featurization of 120 compiled suite circuits.

    The serving hot path between compilation and the forest: one
    traversal per circuit, adjacency-array graph stats, no networkx.
    """
    compiled = [
        result.circuit
        for result in compile_suite(
            _serving_suite(), device,
            optimization_level=3, seed=0, max_workers=1,
        )
    ]
    benchmark.pedantic(lambda: feature_matrix(compiled), rounds=3, iterations=1)


def test_perf_predict_batch(benchmark, device):
    """Steady-state ``FomService.predict`` over the 120-circuit suite.

    End-to-end serving throughput: batched compile (warm pass cache, the
    loaded-service steady state) -> single-pass featurize -> one forest
    predict per chunk.  Measured against the seed-era per-circuit loop
    (cache disabled, multi-pass features, per-circuit predict) this path
    scores the same 120 circuits ~15x faster; the regression gate pins
    the absolute number.
    """
    circuits = [entry.circuit for entry in _serving_suite()]
    service = FomService(
        _tiny_estimator(), device, optimization_level=3, seed=0
    )
    clear_compile_cache()
    service.predict(circuits)  # warm the pass cache once: serving steady state
    benchmark.pedantic(
        lambda: service.predict(circuits), rounds=3, iterations=1
    )


def test_perf_serving_qps(benchmark, tmp_path):
    """Sustained many-client load through the serving daemon.

    The full network path: 6 concurrent clients x 5 keep-alive requests
    of 4 circuits each (the 120-circuit serving suite) against an
    in-process daemon — HTTP framing, dynamic batching (5ms deadline),
    and the warm FomService pipeline.  The benchmark mean is the
    wall-clock of one whole load run; ``extra_info`` records the derived
    QPS and client-observed p50/p99 request latency, so the smoke-bench
    artifact doubles as the serving tail-latency report.
    """
    from repro.circuits.qasm import to_qasm
    from repro.serving import ModelRegistry, ServerConfig, ServingClient
    from repro.serving.server import DaemonThread, ServingDaemon

    model_path = tmp_path / "model.npz"
    save_model(_tiny_estimator(), model_path)
    registry = ModelRegistry()
    registry.add_model_file(
        model_path, make_q20a(), optimization_level=3, seed=0
    )
    daemon = ServingDaemon(registry, ServerConfig(
        port=0, max_batch=64, batch_deadline=0.005, queue_limit=4096,
    ))
    qasm = [to_qasm(entry.circuit) for entry in _serving_suite()]
    n_clients, requests_per_client, request_size = 6, 5, 4
    chunks = [
        qasm[start:start + request_size]
        for start in range(0, n_clients * requests_per_client * request_size,
                           request_size)
    ]
    latencies = []
    wall = {}

    def run_load(host, port):
        latencies.clear()
        errors = []
        started_load = time.perf_counter()

        def drive(client_index):
            with ServingClient(host, port) as client:
                for request_index in range(requests_per_client):
                    chunk = chunks[
                        client_index * requests_per_client + request_index
                    ]
                    started = time.perf_counter()
                    try:
                        client.predict(chunk)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        return
                    latencies.append(time.perf_counter() - started)

        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall["s"] = time.perf_counter() - started_load
        assert not errors, errors

    with DaemonThread(daemon) as (host, port):
        run_load(host, port)  # warm the compile pass cache: steady state
        benchmark.pedantic(
            run_load, args=(host, port), rounds=3, iterations=1
        )

    total_requests = n_clients * requests_per_client
    ordered = sorted(latencies)
    benchmark.extra_info["qps"] = total_requests / wall["s"]
    benchmark.extra_info["requests"] = total_requests
    benchmark.extra_info["p50_s"] = ordered[len(ordered) // 2]
    benchmark.extra_info["p99_s"] = ordered[
        min(len(ordered) - 1, int(0.99 * len(ordered)))
    ]


def test_perf_serving_sharded_qps(benchmark, tmp_path):
    """The same many-client load through a ``--shards 2`` daemon.

    Two spawn workers (own registry + batcher + GIL each) behind the
    dispatcher; half the clients pin ``model="model"`` and half stay
    anonymous — semantically identical requests (same model, same level,
    bit-identical answers) whose routing keys hash to *different* lanes,
    so both shards stay busy.  The timed section is the load run only
    (worker boot is setup), so the regression gate watches dispatch +
    relay overhead on any machine, including the 1-CPU CI container.
    On >=4 cores the sharded daemon must also beat the single-process
    one by >=2x QPS without giving up tail latency (the PR 10 headline:
    serving QPS is no longer capped by one GIL).
    """
    from repro.circuits.qasm import to_qasm
    from repro.serving import RegistrySpec, ServerConfig, ServingClient
    from repro.serving.server import DaemonThread, ServingDaemon

    model_path = tmp_path / "model.npz"
    save_model(_tiny_estimator(), model_path)
    spec = RegistrySpec().add_model_file(
        model_path, "q20a", optimization_level=3, seed=0
    )
    qasm = [to_qasm(entry.circuit) for entry in _serving_suite()]
    n_clients, requests_per_client, request_size = 6, 5, 4
    chunks = [
        qasm[start:start + request_size]
        for start in range(0, n_clients * requests_per_client * request_size,
                           request_size)
    ]
    # Even clients pin the model by name, odd ones don't: same answers,
    # different (model, fingerprint, level, panel) lanes -> both shards.
    lane_pins = ["model", None]

    def run_load(host, port):
        errors = []
        latencies = []
        started_load = time.perf_counter()

        def drive(client_index):
            pin = lane_pins[client_index % len(lane_pins)]
            with ServingClient(host, port) as client:
                for request_index in range(requests_per_client):
                    chunk = chunks[
                        client_index * requests_per_client + request_index
                    ]
                    started = time.perf_counter()
                    try:
                        client.predict(chunk, model=pin)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        return
                    latencies.append(time.perf_counter() - started)

        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started_load
        assert not errors, errors
        ordered = sorted(latencies)
        return {
            "wall_s": wall,
            "qps": (n_clients * requests_per_client) / wall,
            "p50_s": ordered[len(ordered) // 2],
            "p99_s": ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))],
        }

    def make_daemon(shards):
        return ServingDaemon(spec, ServerConfig(
            port=0, shards=shards,
            max_batch=64, batch_deadline=0.005, queue_limit=4096,
        ))

    report = {}
    with DaemonThread(make_daemon(2)) as (host, port):
        run_load(host, port)  # warm both workers' lane caches
        benchmark.pedantic(
            lambda: report.update(run_load(host, port)),
            rounds=3, iterations=1,
        )
    benchmark.extra_info["qps"] = report["qps"]
    benchmark.extra_info["p50_s"] = report["p50_s"]
    benchmark.extra_info["p99_s"] = report["p99_s"]

    if (os.cpu_count() or 1) >= 4:
        # The scaling headline needs real cores: 2 workers + parent +
        # client threads on one CPU would only measure contention.
        with DaemonThread(make_daemon(1)) as (host, port):
            run_load(host, port)
            single = run_load(host, port)
        benchmark.extra_info["single_process_qps"] = single["qps"]
        assert report["qps"] / single["qps"] >= 2.0, (report, single)
        assert report["p99_s"] <= single["p99_s"] * 1.5, (report, single)


def test_perf_compile_search(benchmark, device, tmp_path):
    """Predictor-guided search vs stock level 3 (the PR 8 tentpole gate).

    Setup (untimed) regenerates the committed leaderboards from scratch
    through the process pool and proves the two structural claims:

    * **byte-identical reproducibility** — the freshly generated entries
      equal ``benchmarks/leaderboards/`` byte for byte;
    * **parity-or-win** — on the full 2-20-qubit suite plus both zoo
      workloads, every searched circuit's exact expected fidelity is
      ``>=`` stock level 3's for the same (circuit, seed).

    The timed section is the leaderboard steady state: a *warm*
    ``compile_search`` over the full suite (incumbent config only, one
    trial instead of four) from a cold pass cache, which must come in at
    or under the stock level-3 cold compile it replaces.
    """
    import make_leaderboards as mlb

    from repro.compiler import compile_search
    from repro.compiler.search import reset_search_stats, search_stats
    from repro.fom.metrics import expected_fidelity

    scratch = tmp_path / "leaderboards"
    reset_search_stats()
    searched = mlb.generate(scratch, max_workers=4, workers_mode="process")

    committed = sorted(mlb.LEADERBOARD_DIR.glob("leaderboard_*.json"))
    regenerated = sorted(scratch.glob("leaderboard_*.json"))
    assert [p.name for p in regenerated] == [p.name for p in committed], (
        "leaderboard set drifted -- rerun benchmarks/make_leaderboards.py"
    )
    for fresh, kept in zip(regenerated, committed):
        assert fresh.read_bytes() == kept.read_bytes(), (
            f"{kept.name} is not byte-identical -- rerun "
            "benchmarks/make_leaderboards.py"
        )

    suite = None
    for (tag, workload_device, circuits) in mlb.workloads():
        clear_compile_cache()
        stock = compile_batch(
            circuits, workload_device, optimization_level=3,
            seed=mlb.SEED, max_workers=4, workers_mode="process",
        )
        for result, reference in zip(searched[tag], stock):
            stock_fidelity = expected_fidelity(
                reference.circuit, workload_device,
                calibration=workload_device.reported_calibration,
            )
            search_fidelity = result.properties["search"]["expected_fidelity"]
            assert search_fidelity >= stock_fidelity - 1e-12, (
                tag, result.circuit.name, search_fidelity, stock_fidelity,
            )
        if tag == "q20a-suite":
            suite = circuits

    estimator = mlb.bench_estimator()

    def warm_suite():
        clear_compile_cache()
        return compile_search(
            suite, device, estimator,
            beam_width=mlb.BEAM_WIDTH, generations=mlb.GENERATIONS,
            seed=mlb.SEED, store=mlb.LEADERBOARD_DIR, max_workers=1,
        )

    reset_search_stats()
    benchmark.pedantic(warm_suite, rounds=2, iterations=1)
    stats = search_stats()
    assert stats["searches"] == 0, stats
    assert stats["warm_starts"] == 2 * len(suite), stats

    clear_compile_cache()
    started = time.perf_counter()
    compile_batch(
        suite, device, optimization_level=3, seed=mlb.SEED, max_workers=1
    )
    stock_seconds = time.perf_counter() - started
    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["stock_level3_s"] = stock_seconds
    benchmark.extra_info["speedup_vs_stock"] = stock_seconds / warm_seconds
    assert warm_seconds <= stock_seconds, (warm_seconds, stock_seconds)


def test_perf_drift_refresh(benchmark, tmp_path):
    """Warm drift-study rerun plus the PR 9 refresh-cost/recovery gate.

    Setup (untimed) runs a reduced calibration-drift sweep cold into a
    fresh artifact store and pins the two recovery claims:

    * **cheap refresh** — the single prefix-sliced fine-tune fit per
      step costs a fraction of the full grid-search retrain it stands
      in for (``<= 40%`` of the retrain fit time, summed over steps);
    * **bounded gap** — the best fine-tune Pearson lands within 0.15 of
      the full retrain's at every step (the tolerance documented in
      docs/drift.md).

    The timed section is the warm rerun: the finished study served
    straight back from the fingerprinted store, which must be >=5x
    faster than the cold run (the nightly ``--expect-warm`` contract).
    """
    from repro.evaluation.drift import (
        DriftStudyConfig,
        default_drift_study_config,
        run_drift_study,
    )

    config = DriftStudyConfig(
        device="zoo:grid:8:typical:0",
        steps=2,
        refresh_trees=(4, 8, 16),
        study=default_drift_study_config(),
        cache_dir=str(tmp_path / "drift-cache"),
    )

    started = time.perf_counter()
    cold = run_drift_study(config)
    cold_seconds = time.perf_counter() - started
    assert not cold.from_cache

    retrain_seconds = sum(step.retrain_fit_s for step in cold.steps)
    fine_tune_seconds = sum(step.fine_tune_fit_s for step in cold.steps)
    assert fine_tune_seconds <= 0.40 * retrain_seconds, (
        fine_tune_seconds, retrain_seconds,
    )
    for step in cold.steps:
        assert step.recovery_gap() <= 0.15, (
            step.step, step.retrain_pearson, step.best_fine_tune().pearson,
        )

    def warm():
        result = run_drift_study(config)
        assert result.from_cache
        return result

    benchmark.pedantic(warm, rounds=3, iterations=1)
    warm_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cold_s"] = cold_seconds
    benchmark.extra_info["warm_speedup"] = cold_seconds / warm_seconds
    benchmark.extra_info["retrain_fit_s"] = retrain_seconds
    benchmark.extra_info["fine_tune_fit_s"] = fine_tune_seconds
    benchmark.extra_info["fine_tune_cost_fraction"] = (
        fine_tune_seconds / retrain_seconds
    )
    benchmark.extra_info["max_recovery_gap"] = max(
        step.recovery_gap() for step in cold.steps
    )
    assert cold_seconds / warm_seconds >= 5, (cold_seconds, warm_seconds)


def test_perf_forest_fit(benchmark):
    """Fitting one paper-sized forest (50 trees, 250x30, sqrt features)."""
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(250, 30))
    y = rng.uniform(size=250)
    benchmark.pedantic(
        lambda: RandomForestRegressor(
            n_estimators=50, random_state=0, max_features="sqrt"
        ).fit(X, y),
        rounds=2, iterations=1,
    )


def test_perf_forest_fit_process(benchmark):
    """The paper forest fit through the 4-worker process pool (PR 6).

    Tree fitting is GIL-bound pure Python; the process pool ships
    ``(X, y)`` once per worker and fitted trees come back as flat
    arrays.  Bit-identical to the sequential fit (property-tier pinned).
    """
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(250, 30))
    y = rng.uniform(size=250)
    benchmark.pedantic(
        lambda: RandomForestRegressor(
            n_estimators=50, random_state=0, max_features="sqrt",
            max_workers=4, workers_mode="process",
        ).fit(X, y),
        rounds=2, iterations=1,
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the >=2.5x scaling headline needs at least 4 physical cores",
)
def test_process_pool_forest_fit_scales_on_multicore():
    """PR 6 acceptance: >=2.5x on 4 process workers for the paper fit."""
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(250, 30))
    y = rng.uniform(size=250)

    def timed(**kwargs):
        start = time.perf_counter()
        RandomForestRegressor(
            n_estimators=50, random_state=0, max_features="sqrt", **kwargs
        ).fit(X, y)
        return time.perf_counter() - start

    sequential = timed(max_workers=1)
    pooled = timed(max_workers=4, workers_mode="process")
    assert sequential / pooled >= 2.5, (sequential, pooled)


def test_perf_grid_search(benchmark):
    """The paper's Section V-A3 model selection: the default 36-config
    grid (trees x depth x leaf/split minima) under 3-fold CV.

    This is the estimator-training workload of ``run_study`` — the
    dominant cost once compilation (PR 2) and simulation (PR 1) are fast.
    Sized to a ~120-circuit per-device dataset.  Sequential
    (max_workers=1) for stable regression-gate timing.
    """
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(120, 30))
    y = 1.0 - np.exp(
        -(2.2 * X[:, 12] + 1.4 * X[:, 8] + 0.7 * X[:, 17])
    ) + 0.02 * rng.standard_normal(120)

    benchmark.pedantic(
        lambda: grid_search(
            RandomForestRegressor(random_state=0, max_features="sqrt"),
            DEFAULT_PARAM_GRID, X, y, n_splits=3, seed=0, max_workers=1,
        ),
        rounds=1, iterations=1,
    )
