"""Experiment E8 — model-choice ablation: why a random forest?

The paper uses a random forest regressor.  This bench compares it against
a single decision tree, linear/ridge regression, and k-nearest-neighbours
on the same features/labels and split, justifying the model choice the
paper made (and matching its observation that interpretability plus
accuracy is what the forest buys).
"""

import numpy as np
from conftest import write_artifact

from repro.ml import (
    DecisionTreeRegressor,
    KNeighborsRegressor,
    LinearRegression,
    RandomForestRegressor,
    RidgeRegression,
    pearson_r,
)

MODELS = {
    "random_forest": lambda: RandomForestRegressor(
        n_estimators=100, random_state=0, max_features="sqrt"
    ),
    "decision_tree": lambda: DecisionTreeRegressor(random_state=0),
    "linear": LinearRegression,
    "ridge": lambda: RidgeRegression(alpha=1.0),
    "knn5": lambda: KNeighborsRegressor(n_neighbors=5, weights="distance"),
}


def test_model_comparison(study_result, benchmark):
    def run():
        scores = {}
        for device_name, data in study_result.datasets.items():
            X, y = data.X, data.y
            rng = np.random.default_rng(0)
            order = rng.permutation(len(X))
            n_test = max(1, int(round(len(X) * 0.2)))
            test_idx, train_idx = order[:n_test], order[n_test:]
            per_model = {}
            for name, factory in MODELS.items():
                model = factory()
                model.fit(X[train_idx], y[train_idx])
                predictions = model.predict(X[test_idx])
                per_model[name] = abs(pearson_r(y[test_idx], predictions))
            scores[device_name] = per_model
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["E8: test-set |Pearson r| per model"]
    header = f"{'model':<16}" + "".join(f"{name:>10}" for name in scores)
    lines += ["-" * len(header), header, "-" * len(header)]
    for model_name in MODELS:
        row = f"{model_name:<16}" + "".join(
            f"{scores[d][model_name]:>10.3f}" for d in scores
        )
        lines.append(row)
    write_artifact("model_comparison.txt", "\n".join(lines))

    for device_name, per_model in scores.items():
        forest = per_model["random_forest"]
        # The forest is the best (or within noise of the best) model.
        best = max(per_model.values())
        assert forest >= best - 0.03, device_name
        # And it at least matches the plain linear baseline.  (At paper
        # scale the label surface is smooth enough that linear/ridge come
        # close on the cleaner device; the forest keeps a clear edge on the
        # noisier one and additionally provides the feature importances the
        # paper's Fig. 3 interprets.)
        assert forest > per_model["linear"] - 0.02, device_name
