"""Perf-regression comparator for the CI smoke-bench gate.

Compares a fresh pytest-benchmark JSON result file against a committed
baseline and fails (exit code 1) when any shared benchmark slowed down by
more than the threshold (default 30%).

Both files may be either full pytest-benchmark exports (``{"benchmarks":
[{"name": ..., "stats": {"mean": ...}}, ...]}``) or the simplified mapping
this script writes with ``--update`` (``{"benchmark_name": mean_seconds}``).
New benchmarks (present only in the fresh run) are reported but never fail
the gate, so adding a benchmark does not require touching the baseline in
the same commit.  A benchmark present in the baseline but **missing** from
the fresh run FAILS the gate: a deleted or silently-skipped bench must not
be able to hide a regression.  Retiring a bench on purpose means removing
its baseline entry in the same commit (or passing ``--allow-missing`` for
a one-off run on a machine that skips it).

The baseline records wall-clock means and is therefore machine-class
specific: regenerate it (``--update``) whenever the CI runner class
changes or a slowdown is intentional, and expect a freshly committed
baseline from a development machine to need one CI-side regeneration
before the gate is meaningful.

Usage:
    python benchmarks/compare.py BASELINE FRESH [--threshold 0.30]
    python benchmarks/compare.py BASELINE FRESH --update   # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict

DEFAULT_THRESHOLD = 0.30


def load_means(path: str | Path) -> Dict[str, float]:
    """Benchmark-name -> mean-seconds from either supported JSON shape."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, dict) and "benchmarks" in data:
        means = {}
        for bench in data["benchmarks"]:
            means[bench["name"]] = float(bench["stats"]["mean"])
        return means
    if isinstance(data, dict):
        return {name: float(mean) for name, mean in data.items()}
    raise ValueError(f"unrecognized benchmark JSON shape in {path}")


def compare(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
):
    """Classify each benchmark; returns ``(regressions, missing, lines)``.

    A benchmark regresses when ``fresh > baseline * (1 + threshold)``;
    ``missing`` lists baseline benchmarks absent from the fresh run (the
    caller decides whether those fail the gate — ``main`` does unless
    ``--allow-missing``).
    """
    regressions = []
    missing = []
    lines = []
    for name in sorted(set(baseline) | set(fresh)):
        if name not in fresh:
            missing.append(name)
            lines.append(
                f"  [MISSING] {name} (baseline {baseline[name]:.4f}s, "
                "absent from fresh run)"
            )
            continue
        if name not in baseline:
            lines.append(f"  [new]    {name} ({fresh[name]:.4f}s)")
            continue
        base, now = baseline[name], fresh[name]
        ratio = now / base if base > 0 else float("inf")
        status = "ok"
        if now > base * (1.0 + threshold):
            status = "SLOWER"
            regressions.append(name)
        elif now < base:
            status = "faster"
        lines.append(
            f"  [{status:<6}] {name}: {base:.4f}s -> {now:.4f}s "
            f"({ratio:.2f}x)"
        )
    return regressions, missing, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="fresh pytest-benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed slowdown fraction before failing (default 0.30)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the fresh results and exit 0",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="do not fail when a baseline benchmark is absent from the "
             "fresh run (one-off escape hatch; the gate fails by default "
             "so deleted benches cannot hide regressions)",
    )
    args = parser.parse_args(argv)

    fresh = load_means(args.fresh)
    if args.update:
        Path(args.baseline).write_text(
            json.dumps(dict(sorted(fresh.items())), indent=2) + "\n"
        )
        print(f"baseline updated with {len(fresh)} benchmarks")
        return 0

    baseline = load_means(args.baseline)
    regressions, missing, lines = compare(baseline, fresh, args.threshold)
    print(
        f"perf comparison vs {args.baseline} "
        f"(threshold: +{args.threshold:.0%}):"
    )
    for line in lines:
        print(line)
    failed = False
    if regressions:
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed by more than "
            f"{args.threshold:.0%}: {', '.join(regressions)}"
        )
        failed = True
    if missing:
        if args.allow_missing:
            print(
                f"WARNING: {len(missing)} baseline benchmark(s) missing "
                f"from the fresh run (allowed): {', '.join(missing)}"
            )
        else:
            print(
                f"FAIL: {len(missing)} baseline benchmark(s) missing from "
                f"the fresh run: {', '.join(missing)} — retire them from "
                "the baseline on purpose or pass --allow-missing"
            )
            failed = True
    if failed:
        return 1
    print("OK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
