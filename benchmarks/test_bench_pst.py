"""Experiment E7 — PST labels from mirror circuits (Section V-D).

The paper's future-work discussion proposes the Probability of Successful
Trials (appending the circuit's inverse, so no classical simulation is
needed) as a label source.  This bench measures how well PST-derived labels
track the simulation-based Hellinger labels across a benchmark slice — the
prerequisite for training the proposed figure of merit beyond classically
simulable sizes.
"""

import numpy as np
from conftest import write_artifact

from repro.bench import build_suite
from repro.compiler import compile_circuit
from repro.hardware import make_q20a
from repro.ml import pearson_r, spearman_r
from repro.predictor.pst import pst_label
from repro.simulation import execute_and_label


def test_pst_tracks_hellinger_labels(benchmark):
    device = make_q20a()
    suite = build_suite(
        algorithms=["ghz", "wstate", "qft", "dj", "vqe", "qaoa"],
        max_qubits=9,
    )

    def run():
        hellinger, pst_vals = [], []
        for index, entry in enumerate(suite):
            result = compile_circuit(
                entry.circuit, device, optimization_level=2, seed=index
            )
            distance, _ = execute_and_label(
                result.circuit, device, shots=1000, seed=500 + index
            )
            hellinger.append(distance)
            pst_vals.append(
                pst_label(entry.circuit, device, shots=1000, seed=500 + index)
            )
        return np.array(hellinger), np.array(pst_vals)

    hellinger, pst_vals = benchmark.pedantic(run, rounds=1, iterations=1)

    r_pearson = pearson_r(hellinger, pst_vals)
    r_spearman = spearman_r(hellinger, pst_vals)
    lines = [
        "E7: PST-derived labels vs simulation-based Hellinger labels",
        f"circuits:          {len(hellinger)}",
        f"Pearson  r:        {r_pearson:.3f}",
        f"Spearman r:        {r_spearman:.3f}",
        f"Hellinger range:   [{hellinger.min():.3f}, {hellinger.max():.3f}]",
        f"PST-label range:   [{pst_vals.min():.3f}, {pst_vals.max():.3f}]",
    ]
    write_artifact("pst_labels.txt", "\n".join(lines))

    # PST must be a usable stand-in: clear rank agreement with Hellinger.
    # (Perfect agreement is impossible — the Hellinger label also encodes
    # output-distribution *shape* effects that the shape-free PST cannot
    # see, which is why the paper treats PST as future work.)
    assert r_pearson > 0.55
    assert r_spearman > 0.55
