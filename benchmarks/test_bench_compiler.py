"""Experiment E9 — compiler quality across optimization levels.

The paper compiles its suite "using the Qiskit transpiler module at
optimization level three".  This bench characterizes our substitute
compiler the same way: two-qubit gate counts, depth, routing swaps, and
expected fidelity across levels 0-3 on a benchmark slice, verifying the
levels behave like a production transpiler (monotone quality, level 3 never
worse than level 0).
"""

import numpy as np
from conftest import write_artifact

from repro.bench import build_suite
from repro.compiler import compile_circuit
from repro.fom import expected_fidelity
from repro.hardware import make_q20a


def test_optimization_level_sweep(benchmark):
    device = make_q20a()
    suite = build_suite(
        algorithms=["ghz", "qft", "wstate", "qaoa", "vqe", "su2random"],
        max_qubits=10,
    )

    def run():
        stats = {level: {"cz": [], "depth": [], "fid": [], "swaps": []}
                 for level in range(4)}
        for index, entry in enumerate(suite):
            for level in range(4):
                result = compile_circuit(
                    entry.circuit, device,
                    optimization_level=level, seed=index,
                )
                stats[level]["cz"].append(result.circuit.num_nonlocal_gates())
                stats[level]["depth"].append(result.circuit.depth())
                stats[level]["fid"].append(
                    expected_fidelity(result.circuit, device)
                )
                stats[level]["swaps"].append(
                    result.properties.get("routing_swaps", 0)
                )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "E9: compiler quality per optimization level "
        f"({len(suite)} circuits, device {device.name})",
        f"{'level':<7}{'mean CZ':>9}{'mean depth':>12}"
        f"{'mean swaps':>12}{'mean F_exp':>12}",
    ]
    means = {}
    for level in range(4):
        cz = float(np.mean(stats[level]["cz"]))
        depth = float(np.mean(stats[level]["depth"]))
        swaps = float(np.mean(stats[level]["swaps"]))
        fid = float(np.mean(stats[level]["fid"]))
        means[level] = {"cz": cz, "depth": depth, "fid": fid}
        lines.append(
            f"{level:<7}{cz:>9.1f}{depth:>12.1f}{swaps:>12.1f}{fid:>12.4f}"
        )
    write_artifact("compiler_levels.txt", "\n".join(lines))

    # Level 2/3 shrink circuits relative to level 0's naive pipeline.
    assert means[2]["cz"] <= means[0]["cz"]
    assert means[3]["cz"] <= means[0]["cz"]
    assert means[2]["depth"] <= means[0]["depth"]
    # Level 3 (fidelity-steered trials) achieves the best expected fidelity.
    assert means[3]["fid"] >= means[0]["fid"]
    assert means[3]["fid"] >= means[2]["fid"] - 1e-9
