"""Experiment E6 — feature-set ablation (Section V-D / VI).

The paper concludes that "the appropriate format and combination of circuit
features can yield a far superior figure of merit than any individual
measure alone".  This bench quantifies that: a random forest trained on a
single feature category at a time versus the full 30-dim vector, scored on
the same held-out test split.
"""

import numpy as np
from conftest import write_artifact

from repro.fom.features import FEATURE_GROUPS, FEATURE_NAMES, GROUP_ORDER
from repro.ml import RandomForestRegressor, pearson_r


def _group_columns(group):
    return [
        index for index, name in enumerate(FEATURE_NAMES)
        if FEATURE_GROUPS[name] == group
    ]


def test_feature_group_ablation(study_result, benchmark):
    def run():
        scores = {}
        for device_name, data in study_result.datasets.items():
            X, y = data.X, data.y
            rng = np.random.default_rng(0)
            order = rng.permutation(len(X))
            n_test = max(1, int(round(len(X) * 0.2)))
            test_idx, train_idx = order[:n_test], order[n_test:]
            per_group = {}
            for group in GROUP_ORDER + ["All features"]:
                columns = (
                    list(range(len(FEATURE_NAMES)))
                    if group == "All features"
                    else _group_columns(group)
                )
                model = RandomForestRegressor(
                    n_estimators=50, random_state=0, max_features="sqrt"
                )
                model.fit(X[np.ix_(train_idx, columns)], y[train_idx])
                predictions = model.predict(X[np.ix_(test_idx, columns)])
                per_group[group] = abs(pearson_r(y[test_idx], predictions))
            scores[device_name] = per_group
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["E6: test-set |Pearson r| per feature category (RF ablation)"]
    groups = GROUP_ORDER + ["All features"]
    header = f"{'category':<20}" + "".join(
        f"{name:>10}" for name in scores
    )
    lines += ["-" * len(header), header, "-" * len(header)]
    for group in groups:
        row = f"{group:<20}" + "".join(
            f"{scores[name][group]:>10.3f}" for name in scores
        )
        lines.append(row)
    write_artifact("feature_ablation.txt", "\n".join(lines))

    for device_name, per_group in scores.items():
        full = per_group["All features"]
        # The combined vector beats (or matches) every single category.
        for group in GROUP_ORDER:
            assert full >= per_group[group] - 0.05, (device_name, group)
        # And it beats the weakest single category by a clear margin.
        # (At paper scale single categories become strong predictors too,
        # so the margin is modest; the paper's point is that the *combined*
        # vector is never worse and usually better.)
        assert full > min(per_group[g] for g in GROUP_ORDER) + 0.03
