"""Experiment E10 — error-aware compilation vs calibration staleness.

Section III cites a study [35] showing that calibration-based compilation
strategies beat pure gate-count minimization — but degrade when the
calibration data is outdated.  This bench reproduces that interplay with
our noise-aware layout/routing: measured Hellinger distances of
geometrically compiled vs error-aware compiled circuits, with the error-
aware compiler fed either fresh (true) or heavily drifted calibration.
"""

import numpy as np
from conftest import write_artifact

from repro.bench import build_suite
from repro.compiler import compile_circuit
from repro.compiler.passes.noise_aware import compile_noise_aware
from repro.hardware import make_q20a
from repro.hardware.calibration import drift_calibration
from repro.hardware.device import Device
from repro.simulation import execute_and_label
from repro.simulation.statevector import ideal_distribution


def _with_reported(device: Device, calibration) -> Device:
    return Device(
        name=device.name,
        coupling=device.coupling,
        true_calibration=device.true_calibration,
        reported_calibration=calibration,
        native_gates=device.native_gates,
        noise=device.noise,
    )


def test_error_aware_compilation_and_staleness(benchmark):
    device = make_q20a()
    rng = np.random.default_rng(3)
    stale = drift_calibration(
        device.true_calibration, rng,
        fidelity_drift=1.2, relaxation_drift=1.2,
    )
    fresh_device = _with_reported(device, device.true_calibration)
    stale_device = _with_reported(device, stale)

    suite = build_suite(
        algorithms=["ghz", "wstate", "vqe", "qaoa", "bv", "hamsim"],
        min_qubits=4, max_qubits=10,
    )

    def run():
        rows = {"geometric": [], "error_aware_fresh": [],
                "error_aware_stale": []}
        for index, entry in enumerate(suite):
            ideal = ideal_distribution(entry.circuit)
            geometric = compile_circuit(
                entry.circuit, device, optimization_level=2, seed=index
            ).circuit
            aware_fresh = compile_noise_aware(
                entry.circuit, fresh_device, seed=index
            )
            aware_stale = compile_noise_aware(
                entry.circuit, stale_device, seed=index
            )
            for name, compiled in (
                ("geometric", geometric),
                ("error_aware_fresh", aware_fresh),
                ("error_aware_stale", aware_stale),
            ):
                distance, _ = execute_and_label(
                    compiled, device, shots=1000,
                    seed=4242 + index, ideal=ideal,
                )
                rows[name].append(distance)
        return {name: float(np.mean(vals)) for name, vals in rows.items()}


    means = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "E10: mean measured Hellinger distance by compilation strategy "
        f"({len(suite)} circuits, device Q20-A)",
        f"{'strategy':<22}{'mean Hellinger':>15}",
    ]
    for name, value in means.items():
        lines.append(f"{name:<22}{value:>15.3f}")
    write_artifact("error_aware.txt", "\n".join(lines))

    # Error-aware compilation with *fresh* calibration helps (or at least
    # does not hurt) relative to the geometric baseline.
    assert means["error_aware_fresh"] <= means["geometric"] + 0.01
    # Feeding it stale calibration erases (part of) the advantage —
    # the effect reported in [35] and echoed by the paper's Section V-D.
    assert means["error_aware_stale"] >= means["error_aware_fresh"] - 0.005
