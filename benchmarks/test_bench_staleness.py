"""Experiment E5 — calibration staleness ablation (Section V-B / V-D).

The paper attributes ESP's surprisingly weak correlation to "possibly
outdated T1, T2 times".  This bench makes that mechanism explicit: on the
*same* dataset as Table I (labels fixed), the figures of merit are
recomputed from calibration snapshots of increasing staleness.  Expected
fidelity (no relaxation term) degrades slowly with drift, while ESP — whose
decay factor consumes T1/T2 directly — loses correlation faster as the
relaxation estimates drift, ending up clearly below expected fidelity:
exactly the Table I ordering.
"""

import numpy as np
from conftest import write_artifact

from repro.evaluation import format_series
from repro.fom.metrics import esp, expected_fidelity
from repro.hardware import make_q20a
from repro.hardware.calibration import drift_calibration
from repro.ml import pearson_r

DRIFTS = [0.0, 0.5, 1.0, 2.0]


def test_staleness_degrades_esp_faster(study_result, benchmark):
    device = make_q20a()
    data = study_result.datasets["Q20-A"]
    compiled = [entry.compiled for entry in data.entries]
    labels = data.y

    def run():
        rng = np.random.default_rng(7)
        fidelity_rows, esp_rows = [], []
        for drift in DRIFTS:
            stale = drift_calibration(
                device.true_calibration, rng,
                fidelity_drift=0.1 * drift, relaxation_drift=drift,
            )
            fid_vals = np.array([
                expected_fidelity(c, device, calibration=stale)
                for c in compiled
            ])
            esp_vals = np.array([
                esp(c, device, calibration=stale) for c in compiled
            ])
            fidelity_rows.append(abs(pearson_r(fid_vals, labels)))
            esp_rows.append(abs(pearson_r(esp_vals, labels)))
        return fidelity_rows, esp_rows

    fidelity_rows, esp_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_series(
        "E5: |Pearson r| vs calibration staleness (relaxation drift), "
        f"{len(compiled)} circuits on Q20-A",
        "drift",
        DRIFTS,
        {"expected_fidelity": fidelity_rows, "esp": esp_rows},
    )
    write_artifact("staleness.txt", table)

    # With fresh (true) calibration both metrics are at their best.
    assert fidelity_rows[0] > 0.5
    assert esp_rows[0] > 0.5
    # Staleness costs ESP more than it costs expected fidelity ...
    esp_loss = esp_rows[0] - esp_rows[-1]
    fidelity_loss = fidelity_rows[0] - fidelity_rows[-1]
    assert esp_loss > fidelity_loss - 0.02
    # ... and stale ESP ends up below stale expected fidelity
    # (the paper's Table I ordering).
    assert esp_rows[-1] < fidelity_rows[-1]
