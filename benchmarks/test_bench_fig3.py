"""Experiment E3 — Fig. 3: random forest model feature importance.

Regenerates the paper's Fig. 3: per-QPU feature importances of the trained
random forest, grouped into the paper's seven categories (liveness, gate
ratios, directed program communication, parallelism, gate counts, circuit
depth, other).

Shape assertions encode the paper's headline observation: the features
designed to capture qubit activity, operational density, and qubit
interactions (liveness + gate ratios + parallelism + directed program
communication) jointly dominate the model, while circuit depth alone
contributes little.
"""

from conftest import write_artifact

from repro.evaluation import format_fig3, grouped_importances

SOPHISTICATED = [
    "Liveness", "Gate ratios", "Parallelism", "Dir. prog. comm.",
]


def test_fig3_feature_importance(study_result, benchmark):
    result = benchmark.pedantic(lambda: study_result, rounds=1, iterations=1)
    per_device = {
        name: report.feature_importances
        for name, report in result.reports.items()
    }
    figure = format_fig3(per_device)
    write_artifact("fig3.txt", figure)

    for name, importances in per_device.items():
        assert importances.shape == (30,)
        assert abs(importances.sum() - 1.0) < 1e-9

        grouped = grouped_importances(importances)
        sophisticated = sum(grouped[group] for group in SOPHISTICATED)
        # The activity/density/interaction features jointly dominate.
        assert sophisticated > 0.45, name
        # Circuit depth alone is a weak contributor (paper Fig. 3).
        assert grouped["Circuit depth"] < sophisticated, name
