"""Regenerate the committed compilation-search leaderboards.

Single source of truth for the bench search configuration: the estimator,
the workloads (the 2-20-qubit benchmark suite on Q20-A plus two zoo
devices), and the beam knobs all live here, imported by
``test_perf_compile_search``.  Entries are canonical JSON with no
timestamps, so rerunning this script with an unchanged estimator and
unchanged knobs reproduces ``benchmarks/leaderboards/`` byte for byte —
which is exactly what the bench asserts.

Usage::

    PYTHONPATH=src python benchmarks/make_leaderboards.py

Rerun whenever the beam knobs below, the bench estimator, the benchmark
suite, or ``LEADERBOARD_VERSION`` change; commit the result.
"""

import pathlib
import sys

import numpy as np

# Beam knobs for the committed entries: the smallest search that still
# expands beyond the stock trials.  Changing either rotates every
# leaderboard fingerprint (the old entries become silent misses).
BEAM_WIDTH = 2
GENERATIONS = 1
SEED = 0

LEADERBOARD_DIR = pathlib.Path(__file__).resolve().parent / "leaderboards"


def bench_estimator():
    """A small deterministic fitted forest (content-stable fingerprint)."""
    from repro.ml.forest import RandomForestRegressor

    rng = np.random.default_rng(0)
    forest = RandomForestRegressor(
        n_estimators=5, random_state=0, max_features="sqrt"
    )
    forest.fit(rng.uniform(size=(40, 30)), rng.uniform(size=40))
    return forest


def workloads():
    """The bench workloads: ``(tag, device, circuits)`` triples."""
    from repro.bench.algorithms import ghz, qft
    from repro.bench.suite import build_suite
    from repro.circuits.random import random_circuit
    from repro.hardware import make_q20a, make_zoo_device

    suite = [entry.circuit for entry in build_suite(min_qubits=2, max_qubits=20)]
    return [
        ("q20a-suite", make_q20a(), suite),
        (
            "zoo-ring",
            make_zoo_device("ring", 12, tier="typical", seed=0),
            [ghz(10), qft(8), random_circuit(12, 20, seed=7, measure=True)],
        ),
        (
            "zoo-heavy-hex",
            make_zoo_device("heavy_hex", 16, tier="typical", seed=0),
            [ghz(12), qft(10), random_circuit(14, 20, seed=8, measure=True)],
        ),
    ]


def generate(store_root, max_workers=None, workers_mode=None):
    """Cold-search every workload into ``store_root``; returns results.

    ``store_root`` must hold no matching incumbents (they would warm-start
    and suppress regeneration).  Output is bit-identical for every worker
    count and pool mode.
    """
    from repro.compiler import compile_search

    estimator = bench_estimator()
    results = {}
    for tag, device, circuits in workloads():
        results[tag] = compile_search(
            circuits, device, estimator,
            beam_width=BEAM_WIDTH, generations=GENERATIONS, seed=SEED,
            store=store_root, max_workers=max_workers,
            workers_mode=workers_mode,
        )
    return results


def main():
    from repro.compiler.search import reset_search_stats, search_stats

    LEADERBOARD_DIR.mkdir(parents=True, exist_ok=True)
    stale = sorted(LEADERBOARD_DIR.glob("leaderboard_*.json"))
    for path in stale:
        path.unlink()
    reset_search_stats()
    generate(LEADERBOARD_DIR, max_workers=4, workers_mode="process")
    stats = search_stats()
    entries = sorted(LEADERBOARD_DIR.glob("leaderboard_*.json"))
    print(f"wrote {len(entries)} entries to {LEADERBOARD_DIR}")
    for path in entries:
        print(f"  {path.name}")
    print(" ".join(f"{key}={stats[key]}" for key in sorted(stats)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
