"""Shared fixtures for the benchmark harness.

The expensive correlation study runs once per session and is shared by the
Table I and Fig. 3 benches.  By default the benches use a reduced-but-
faithful configuration (2-12 qubits, 1000 shots) that finishes in a few
minutes; set ``REPRO_FULL=1`` to run the paper-scale configuration
(2-20 qubits, 2000 shots, full hyper-parameter grid — roughly 15 minutes).

Every bench writes its artefact (the regenerated table or figure) to
``benchmarks/results/`` and prints it, so the reproduction output is
inspectable after the run.
"""

import os
import pathlib

import pytest

from repro.evaluation import StudyConfig, run_study

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Every test in this directory carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)

FULL_SCALE = os.environ.get("REPRO_FULL") == "1"

REDUCED_GRID = {
    "n_estimators": [50],
    "max_depth": [None, 10],
    "min_samples_leaf": [1, 2],
    "min_samples_split": [2],
}

if FULL_SCALE:
    STUDY_CONFIG = StudyConfig(shots=2000, seed=0)
else:
    STUDY_CONFIG = StudyConfig(
        max_qubits=12, shots=1000, seed=0, param_grid=REDUCED_GRID
    )


@pytest.fixture(scope="session")
def study_result():
    """The correlation study shared by Table I / Fig. 3 benches."""
    return run_study(config=STUDY_CONFIG)


def write_artifact(name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[artifact written to {path}]")
