"""Cross-device generalization: train on one QPU, score transfer on the zoo.

The paper's case study trains and evaluates the Hellinger estimator on the
same device.  This example asks the question the two-QPU setup cannot:
does a model trained on one topology keep ranking circuits correctly on
hardware it never saw?  It trains on a grid device (the paper's setting)
and evaluates transfer on a ring, a heavy-hex lattice, and a seeded random
bounded-degree device from the zoo — three genuinely different coupling
structures.

One estimator is fitted on the train device's 80/20 training split; the
in-domain column and every transfer column score that same model on the
held-out programs only, so the gaps isolate the hardware change.  With
``--cache-dir`` the run is resumable: per-device labelled datasets, the
in-domain report, and the train-split estimator are checkpointed and
reused whenever their input fingerprints are unchanged.

Run:  python examples/cross_device_study.py [--quick] [--max-qubits N]
          [--shots N] [--seed N] [--tier TIER] [--cache-dir DIR]
          [--max-workers N]
"""

import argparse
import time

from repro.evaluation import (
    StudyConfig,
    format_transfer_table,
    run_cross_device_study,
)
from repro.hardware import make_zoo_device

REDUCED_GRID = {
    "n_estimators": [50],
    "max_depth": [None, 10],
    "min_samples_leaf": [1, 2],
    "min_samples_split": [2],
}

QUICK_GRID = {
    "n_estimators": [30],
    "max_depth": [None, 8],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smallest meaningful run: 2-6 qubit suite, 400 shots, tiny grid",
    )
    parser.add_argument("--max-qubits", type=int, default=10)
    parser.add_argument("--shots", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tier", default="typical", choices=["clean", "typical", "noisy"],
        help="noise tier shared by every zoo device (default: typical)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per compiled/executed circuit",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="checkpoint datasets/estimator here; unchanged reruns resume",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None,
        help="worker threads for batched stages (default: one per CPU)",
    )
    args = parser.parse_args()

    if args.quick:
        config = StudyConfig(
            max_qubits=min(args.max_qubits, 6), shots=400, seed=args.seed,
            param_grid=QUICK_GRID, progress=args.progress,
        )
    else:
        config = StudyConfig(
            max_qubits=args.max_qubits, shots=args.shots, seed=args.seed,
            param_grid=REDUCED_GRID, progress=args.progress,
        )
    config.cache_dir = args.cache_dir
    config.max_workers = args.max_workers

    # Train where the paper trains (a square grid), transfer to three
    # structurally different topologies at the same noise tier.
    train_device = make_zoo_device("grid", 12, tier=args.tier, seed=args.seed)
    eval_devices = [
        make_zoo_device("ring", 12, tier=args.tier, seed=args.seed),
        make_zoo_device("heavy_hex", 16, tier=args.tier, seed=args.seed),
        make_zoo_device("random", 12, tier=args.tier, seed=args.seed),
    ]

    start = time.time()
    result = run_cross_device_study(
        train_device, eval_devices, config=config
    )
    print()
    print(format_transfer_table(result))
    print(f"\ntotal runtime: {time.time() - start:.0f}s")
    print(
        "\nReading the table: each starred column scores the grid-trained\n"
        "estimator on a device it never saw, using only programs held out\n"
        "of training (so the gap isolates the hardware change).  A small\n"
        "transfer gap means the learned circuit features generalize across\n"
        "topologies; the established FoMs provide per-device baselines."
    )


if __name__ == "__main__":
    main()
