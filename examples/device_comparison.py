"""Compare circuit execution quality across the two case-study QPUs.

Runs a family of GHZ and QFT circuits of growing width on both emulated
IQM devices (Q20-A and Q20-B) and prints the measured Hellinger distance,
the established hardware-aware figures of merit, and the PST (mirror
circuit) metric from the paper's future-work section.

Run:  python examples/device_comparison.py
"""

from repro.bench.algorithms import ghz, qft
from repro.compiler import compile_circuit
from repro.fom import esp, expected_fidelity
from repro.hardware import make_q20_pair
from repro.predictor import pst
from repro.simulation import execute_and_label, ideal_distribution


def main() -> None:
    devices = make_q20_pair()
    widths = [3, 6, 9, 12, 15]

    for family_name, family in (("ghz", ghz), ("qft", qft)):
        print(f"=== {family_name} family ===")
        header = (
            f"{'n':>3} {'device':<7} {'CZ':>4} {'depth':>6} "
            f"{'F_exp':>7} {'ESP':>7} {'Hellinger':>10} {'PST':>6}"
        )
        print(header)
        print("-" * len(header))
        for width in widths:
            circuit = family(width)
            ideal = ideal_distribution(circuit)
            for device in devices:
                result = compile_circuit(
                    circuit, device, optimization_level=3, seed=1
                )
                compiled = result.circuit
                distance, _ = execute_and_label(
                    compiled, device, shots=2000, seed=5, ideal=ideal
                )
                pst_value, _ = pst(circuit, device, shots=2000, seed=5)
                print(
                    f"{width:>3} {device.name:<7} "
                    f"{compiled.num_nonlocal_gates():>4} "
                    f"{compiled.depth():>6} "
                    f"{expected_fidelity(compiled, device):>7.3f} "
                    f"{esp(compiled, device):>7.3f} "
                    f"{distance:>10.3f} {pst_value:>6.3f}"
                )
        print()
    print(
        "Q20-B (cleaner calibration, less crosstalk) consistently beats\n"
        "Q20-A; the Hellinger distance and PST degrade together as circuits\n"
        "grow — the raw material behind the paper's correlation study."
    )


if __name__ == "__main__":
    main()
