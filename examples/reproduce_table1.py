"""Regenerate the paper's Table I and Fig. 3 from the command line.

By default runs a reduced configuration (2-12 qubits) that completes in a
few minutes; pass ``--full`` for the paper-scale 2-20 qubit study (about
15 minutes).  With ``--cache-dir`` the run is resumable: per-device
datasets and trained estimators are checkpointed there, and a rerun with
unchanged settings skips the completed compile/execute/train stages.

Run:  python examples/reproduce_table1.py [--full] [--max-qubits N]
           [--shots N] [--seed N] [--cache-dir DIR] [--max-workers N]
"""

import argparse
import time

from repro.evaluation import (
    StudyConfig,
    format_fig3,
    format_table_i,
    run_study,
)

REDUCED_GRID = {
    "n_estimators": [50],
    "max_depth": [None, 10],
    "min_samples_leaf": [1, 2],
    "min_samples_split": [2],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale study: 2-20 qubits, 2000 shots, full grid search",
    )
    parser.add_argument("--max-qubits", type=int, default=12)
    parser.add_argument("--shots", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per compiled/executed circuit",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="checkpoint datasets/estimators here; reruns with unchanged "
             "settings resume instead of recomputing",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None,
        help="worker threads for batched stages (default: one per CPU)",
    )
    args = parser.parse_args()

    if args.full:
        config = StudyConfig(shots=2000, seed=args.seed, progress=args.progress)
    else:
        config = StudyConfig(
            max_qubits=args.max_qubits,
            shots=args.shots,
            seed=args.seed,
            param_grid=REDUCED_GRID,
            progress=args.progress,
        )
    config.cache_dir = args.cache_dir
    config.max_workers = args.max_workers

    start = time.time()
    result = run_study(config=config)
    print()
    print(format_table_i(result))
    print()
    importances = {
        name: report.feature_importances
        for name, report in result.reports.items()
    }
    print(format_fig3(importances))
    print(f"\ntotal runtime: {time.time() - start:.0f}s")
    print(
        "\nPaper reference (Table I): gates 0.46/0.61/0.53, "
        "depth 0.46/0.62/0.54,\n  fidelity 0.66/0.80/0.73, "
        "ESP 0.59/0.70/0.64, proposed 0.88/0.94/0.91 (+49% avg)."
    )


if __name__ == "__main__":
    main()
