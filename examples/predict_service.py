"""Serve the trained figure of merit: FomService end to end.

The paper's estimator is meant to be *used* — score candidate circuits
fast, with no calibration data.  This example is the serving workflow:

1. build a labelled dataset on the emulated Q20-A QPU and train the
   estimator once (a reduced suite, so the example stays quick),
2. persist the model with ``save_model`` and write the benchmark
   circuits out as QASM files,
3. boot a :class:`~repro.predictor.service.FomService` from the saved
   artifacts — model + device loaded once,
4. batch-score the circuits (one ``predict`` call), stream them from a
   generator in chunks, and print the paper's full metric panel,
5. time the batched path against the seed-era per-circuit loop.

Run:  python examples/predict_service.py [--quick] [--max-qubits N]
          [--workdir DIR]

The artifacts land in ``--workdir`` (default: a temporary directory), so
afterwards the CLI serves the same model:

    python -m repro predict <workdir>/circuits --device q20a \
        --model <workdir>/model.npz --foms
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro.bench import build_suite
from repro.bench.suite import suite_to_qasm
from repro.circuits.qasm import from_qasm
from repro.compiler import clear_compile_cache, compile_circuit
from repro.evaluation import save_model
from repro.fom import feature_vector
from repro.hardware import make_q20a
from repro.predictor import FomService, HellingerEstimator, build_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-qubits", type=int, default=8)
    parser.add_argument(
        "--quick", action="store_true",
        help="smallest faithful run (used by the CI examples smoke job)",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="where to put model.npz and circuits/*.qasm "
             "(default: a temporary directory)",
    )
    args = parser.parse_args()
    if args.quick:
        args.max_qubits = min(args.max_qubits, 6)

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="repro_serve_"))
    device = make_q20a()

    # 1. Train once (the expensive part — exactly the Fig. 2 workflow).
    suite = build_suite(max_qubits=args.max_qubits)
    print(f"Training on {len(suite)} circuits (2-{args.max_qubits} qubits)...")
    dataset = build_dataset(suite, device, shots=500 if args.quick else 2000,
                            seed=0)
    grid = {
        "n_estimators": [25],
        "max_depth": [None, 10],
        "min_samples_leaf": [1],
        "min_samples_split": [2],
    }
    estimator = HellingerEstimator(param_grid=grid, seed=0)
    estimator.fit(dataset.X, dataset.y)
    print(f"grid search best params: {estimator.best_params_}")

    # 2. Persist the serving artifacts.
    model_path = workdir / "model.npz"
    save_model(estimator, model_path)
    qasm_dir = workdir / "circuits"
    qasm_paths = suite_to_qasm(suite, qasm_dir)
    print(f"model -> {model_path}")
    print(f"{len(qasm_paths)} circuits -> {qasm_dir}/*.qasm\n")

    # 3. Boot the service: model + device loaded once, served many times.
    service = FomService.load(model_path, device, optimization_level=3, seed=0)

    # 4a. Batch scoring: one call, any number of circuits.
    circuits = [from_qasm(path.read_text()) for path in qasm_paths]
    predictions = service.predict(circuits)
    print("Predicted Hellinger distance per circuit (best five):")
    ranking = sorted(zip(predictions, qasm_paths))
    for value, path in ranking[:5]:
        print(f"  {path.stem:<20} d = {value:.3f}")

    # 4b. Streaming: a generator source is consumed chunk by chunk, so a
    # corpus larger than memory scores in bounded space.
    def qasm_stream():
        for path in qasm_paths:
            yield from_qasm(path.read_text())

    streamed = 0
    for chunk in service.predict_stream(qasm_stream(), chunk_size=16):
        streamed += len(chunk)
    print(f"streamed {streamed} circuits in chunks of 16\n")

    # 4c. The paper's full metric panel from one compile pass.
    panel = service.score_established_foms(circuits[:4])
    names = [path.stem for path in qasm_paths[:4]]
    print(f"{'circuit':<20}" + "".join(f"{k:>20}" for k in panel))
    for index, name in enumerate(names):
        row = f"{name:<20}"
        for key in panel:
            row += f"{panel[key][index]:>20.4f}"
        print(row)
    print()

    # 5. Throughput: batched service vs the seed-era per-circuit loop.
    clear_compile_cache()
    start = time.perf_counter()
    service.predict(circuits)
    batched_seconds = time.perf_counter() - start

    clear_compile_cache()
    start = time.perf_counter()
    for index, circuit in enumerate(circuits):
        compiled = compile_circuit(
            circuit, device, optimization_level=3, seed=7919 * index
        ).circuit
        estimator.predict(feature_vector(compiled)[None, :])
    loop_seconds = time.perf_counter() - start

    rate = len(circuits) / batched_seconds
    print(f"batched predict: {len(circuits)} circuits in "
          f"{batched_seconds:.2f}s ({rate:.1f} circuits/s)")
    print(f"per-circuit loop: {loop_seconds:.2f}s "
          f"({loop_seconds / batched_seconds:.1f}x slower)")


if __name__ == "__main__":
    main()
