"""Calibration-drift study: estimator staleness and the cost of recovery.

A trained Hellinger estimator assumes the hardware still looks like the
calibration snapshot it was trained against.  This example walks a zoo
device's *true* calibration away from its frozen report with the tier's
drift knobs (the iterated-map analogue of the paper's Markov dynamics)
and measures, at every step:

* how the step-0 estimator decays on freshly-labelled circuits
  (``stale_r``),
* what a **full retrain** — the complete grid-search protocol — buys
  back and at what fit cost, and
* what a cheap **fine-tune** — appending a few fresh trees to the stale
  forest, one prefix-sliced fit for the whole sweep — recovers at a
  fraction of that cost.

Every stage is cached through a fingerprinted
:class:`~repro.evaluation.artifacts.ArtifactStore` (``--cache-dir``):
per-step datasets, per-step retrain reports, the base estimator, and the
finished study itself.  Rerunning with unchanged inputs is a pure cache
read — ``--expect-warm`` asserts exactly that (the nightly CI contract).

Run:  python examples/drift_study.py [--quick] [--device SPEC] [--steps N]
          [--drift-scale X] [--cache-dir DIR] [--expect-warm]
          [--seed N] [--max-workers N]
"""

import argparse
import sys
import time

from repro.evaluation import (
    DriftStudyConfig,
    default_drift_study_config,
    format_drift_table,
    run_drift_study,
)

QUICK_GRID = {
    "n_estimators": [10],
    "max_depth": [6],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller device, suite, and grid (the nightly CI sweep)",
    )
    parser.add_argument(
        "--device", default=None,
        help="device spec (default: zoo:grid:12:typical:0; "
             "--quick: zoo:grid:8:typical:0)",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--drift-scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cache-dir", default=None,
        help="fingerprint-cache every stage here; reruns go warm",
    )
    parser.add_argument(
        "--expect-warm", action="store_true",
        help="fail unless the whole study was served from the cache",
    )
    parser.add_argument("--max-workers", type=int, default=None)
    args = parser.parse_args()

    study = default_drift_study_config(progress=True)
    study.seed = args.seed
    study.max_workers = args.max_workers
    if args.quick:
        study.shots = 200
        study.param_grid = QUICK_GRID
    config = DriftStudyConfig(
        device=args.device
        or ("zoo:grid:8:typical:0" if args.quick else "zoo:grid:12:typical:0"),
        steps=args.steps if args.steps is not None else (2 if args.quick else 3),
        drift_scale=args.drift_scale,
        refresh_trees=(2, 4) if args.quick else (4, 8, 16),
        study=study,
        cache_dir=args.cache_dir,
        progress=True,
    )

    started = time.perf_counter()
    result = run_drift_study(config)
    elapsed = time.perf_counter() - started
    print()
    print(format_drift_table(result))
    print()

    if result.from_cache:
        print(f"warm rerun: whole study served from cache in {elapsed:.2f}s")
    else:
        retrain_s = sum(step.retrain_fit_s for step in result.steps)
        fine_tune_s = sum(step.fine_tune_fit_s for step in result.steps)
        print(
            f"cold run in {elapsed:.2f}s — retrain fits {retrain_s:.2f}s, "
            f"fine-tune fits {fine_tune_s:.2f}s "
            f"({fine_tune_s / retrain_s:.1%} of retrain)"
            if retrain_s > 0 else f"cold run in {elapsed:.2f}s"
        )
    if args.expect_warm and not result.from_cache:
        print("FAIL: --expect-warm but the study was recomputed",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
