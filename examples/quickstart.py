"""Quickstart: compile a circuit, execute it, and score figures of merit.

Builds a GHZ circuit, compiles it for the emulated IQM Q20-B device at
optimization level 3, executes it on the noisy-QPU emulator, and compares
every figure of merit — including the paper's trained Hellinger estimate —
against the actually measured Hellinger distance.

Run:  python examples/quickstart.py
"""

from repro import QuantumCircuit, compile_circuit, make_q20b
from repro.fom import esp, expected_fidelity, feature_vector
from repro.simulation import execute_and_label, ideal_distribution


def main() -> None:
    # 1. Build a program circuit (8-qubit GHZ state).
    num_qubits = 8
    circuit = QuantumCircuit(num_qubits, name="ghz8")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.measure_all()
    print("Program circuit:")
    print(circuit.draw())
    print()

    # 2. Compile for the Q20-B device (level 3 = best-of-N trials, steered
    #    by expected fidelity, exactly like the flows the paper studies).
    device = make_q20b()
    result = compile_circuit(circuit, device, optimization_level=3, seed=7)
    compiled = result.circuit
    print(
        f"Compiled for {device.name}: {compiled.size()} native gates, "
        f"depth {compiled.depth()}, "
        f"{compiled.num_nonlocal_gates()} CZ gates, "
        f"{result.properties.get('routing_swaps', 0)} routing swaps"
    )
    print(f"initial layout: {result.initial_layout}")
    print(f"final layout:   {result.final_layout}")
    print()

    # 3. Established figures of merit (Section II-B of the paper).
    print("Established figures of merit:")
    print(f"  number of gates:    {compiled.size()}")
    print(f"  circuit depth:      {compiled.depth()}")
    print(f"  expected fidelity:  {expected_fidelity(compiled, device):.4f}")
    print(f"  ESP:                {esp(compiled, device):.4f}")
    print()

    # 4. Execute on the noisy emulator and measure the actual quality.
    distance, execution = execute_and_label(
        compiled, device, shots=2000, seed=1
    )
    ideal = ideal_distribution(circuit)
    top = sorted(execution.distribution().items(), key=lambda kv: -kv[1])[:4]
    print(f"Execution on {device.name} (2000 shots):")
    print(f"  ideal distribution:     {ideal}")
    print(f"  top measured outcomes:  {top}")
    print(f"  success probability:    {execution.success_probability:.3f}")
    print(f"  measured Hellinger distance: {distance:.3f}")
    print()

    # 5. The 30-dim feature vector that feeds the proposed figure of merit.
    features = feature_vector(compiled)
    print(f"Feature vector (first 8 of {len(features)}): "
          f"{[round(float(v), 3) for v in features[:8]]}")
    print("Train the full estimator with examples/train_fom_estimator.py")


if __name__ == "__main__":
    main()
