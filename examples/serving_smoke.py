"""Serving-daemon smoke check: boot, drive, verify, drain, leave nothing.

This is the CI ``serving-smoke`` job's driver (and runnable locally).
Against the artifacts ``predict_service.py --workdir DIR`` leaves
behind, it:

1. starts ``python -m repro serve`` as a real subprocess on a free port,
2. drives it with :class:`~repro.serving.client.ServingClient` —
   ``healthz``, several **concurrent** ``predict`` requests (so dynamic
   batching actually coalesces), a ``foms`` panel, and ``stats``,
3. asserts every daemon response is **bit-identical** to a direct
   :class:`~repro.predictor.service.FomService` call on the same inputs
   (float64 values survive the JSON round-trip exactly),
4. exercises the hot-reload loop: ``repro client reload`` with an
   unchanged file is a no-op, then the model file is overwritten with a
   fine-tuned estimator and reloaded **under concurrent traffic** — no
   request drops, the superseded fingerprint stays pinnable with its old
   answers, and post-swap responses are bit-identical to both a direct
   service on the new file and a freshly restarted daemon,
5. sends SIGTERM while a request is in flight and asserts the response
   still arrives (graceful drain), the process exits 0, and
6. verifies nothing is left behind: the port is closed and no stray
   process still references the workdir.

Exit code 0 = all of the above held.

Run:  python examples/predict_service.py --quick --workdir /tmp/serve
      python examples/serving_smoke.py --workdir /tmp/serve
"""

import argparse
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.circuits.qasm import from_qasm
from repro.evaluation.persistence import save_model
from repro.predictor import FomService
from repro.serving import ServingClient

FOM_LABELS = (
    "Number of gates", "Circuit depth", "Expected fidelity", "ESP",
    "Proposed approach",
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def processes_referencing(needle: str, ignore: set) -> list:
    """PIDs whose command line mentions ``needle`` (orphan detector)."""
    found = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit() or int(entry.name) in ignore:
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes().replace(b"\0", b" ")
        except OSError:
            continue
        if needle.encode() in cmdline:
            found.append((int(entry.name), cmdline.decode(errors="replace")))
    return found


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", required=True,
        help="directory predict_service.py wrote model.npz + circuits/ into",
    )
    parser.add_argument("--device", default="q20a")
    parser.add_argument("--level", type=int, default=3)
    args = parser.parse_args()

    workdir = Path(args.workdir)
    model_path = workdir / "model.npz"
    qasm_paths = sorted((workdir / "circuits").glob("*.qasm"))
    if not model_path.is_file() or not qasm_paths:
        fail(f"no serving artifacts under {workdir}; "
             "run predict_service.py --workdir first")
    qasm = [path.read_text() for path in qasm_paths]
    # Three concurrent requests out of the corpus (distinct sizes, so the
    # coalesced batch interleaves unequal requests).
    requests = [qasm[0:3], qasm[3:5], qasm[5:11]]

    print(f"[smoke] starting daemon for {model_path}")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--model", str(model_path), "--device", args.device,
         "--level", str(args.level), "--port", "0",
         "--batch-deadline-ms", "150", "--max-batch", "64"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        line = daemon.stdout.readline()
        if "listening on http://" not in line:
            fail(f"daemon failed to announce itself: {line!r}")
        port = int(line.split("listening on http://")[1]
                   .split(" ")[0].rsplit(":", 1)[1])
        print(f"[smoke] daemon up on port {port}")
        client = ServingClient(port=port)

        status, health = client.healthz()
        if status != 200 or health["status"] != "serving":
            fail(f"healthz: {status} {health}")
        print(f"[smoke] healthz OK ({health['models']})")

        # Concurrent predict requests: the 150ms deadline lets them
        # coalesce into one dynamic batch.
        responses = [None] * len(requests)
        errors = []

        def drive(index: int) -> None:
            worker_client = ServingClient(port=port)
            try:
                responses[index] = worker_client.predict(requests[index])
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append((index, exc))
            finally:
                worker_client.close()

        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(len(requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        if errors:
            fail(f"concurrent predict failed: {errors}")

        # Bit-identity: the daemon's answers must equal a direct
        # FomService call on the same per-request inputs.
        service = FomService.load(
            model_path, args.device, optimization_level=args.level, seed=0
        )
        for index, request in enumerate(requests):
            direct = service.predict(
                [from_qasm(text) for text in request]
            ).tolist()
            served = responses[index]["predictions"]
            if served != direct:
                fail(f"request {index} not bit-identical:\n"
                     f"  served: {served}\n  direct: {direct}")
        print(f"[smoke] {len(requests)} concurrent requests bit-identical "
              "to direct FomService calls")

        panel = client.foms(qasm[:3])["foms"]
        direct_panel = service.score_established_foms(
            [from_qasm(text) for text in qasm[:3]]
        )
        for label in FOM_LABELS:
            if panel[label] != direct_panel[label].tolist():
                fail(f"foms[{label!r}] mismatch: {panel[label]} "
                     f"vs {direct_panel[label].tolist()}")
        print("[smoke] foms panel bit-identical")

        stats = client.stats()
        if stats["batches"]["total"] < 1:
            fail(f"no batches recorded: {stats}")
        sizes = stats["batches"]["size_histogram"]
        print(f"[smoke] stats OK: {stats['batches']['requests_total']} "
              f"requests over {stats['batches']['total']} batches "
              f"(sizes {sizes}), stages "
              f"{ {k: round(v, 3) for k, v in stats['latency']['stages_s'].items()} }")

        # ------------------------------------------------------------------
        # Hot reload: overwrite the model file, swap mid-traffic.
        # ------------------------------------------------------------------

        def cli_reload() -> str:
            completed = subprocess.run(
                [sys.executable, "-m", "repro", "client", "reload",
                 "--port", str(port)],
                capture_output=True, text=True, timeout=300,
            )
            if completed.returncode != 0:
                fail(f"repro client reload failed: {completed.stderr}")
            return completed.stdout

        output = cli_reload()
        if "no model changes detected" not in output:
            fail(f"reload of an unchanged file should be a no-op: {output!r}")
        print("[smoke] reload with unchanged file is a no-op")

        old_fingerprint = responses[0]["fingerprint"]
        old_direct = {
            index: responses[index]["predictions"]
            for index in range(len(requests))
        }

        # A cheap refresh: append fine-tuned trees to the serving
        # estimator and write the result over the daemon's model file.
        rng = np.random.default_rng(7)
        tuned = service.estimator.fine_tune(
            rng.uniform(size=(40, 30)), rng.uniform(size=40), n_trees=4
        )
        save_model(tuned, model_path)

        # Reload while concurrent predict traffic is in flight: nothing
        # may drop, and every response must match one of the two models.
        live_responses = []
        live_errors = []
        reload_done = threading.Event()

        def live_traffic() -> None:
            worker_client = ServingClient(port=port)
            try:
                while not reload_done.is_set():
                    live_responses.append(worker_client.predict(qasm[:2]))
            except Exception as exc:  # noqa: BLE001 - reported below
                live_errors.append(exc)
            finally:
                worker_client.close()

        live_threads = [
            threading.Thread(target=live_traffic) for _ in range(3)
        ]
        for thread in live_threads:
            thread.start()
        output = cli_reload()
        reload_done.set()
        for thread in live_threads:
            thread.join(timeout=600)
        if live_errors:
            fail(f"requests dropped during hot swap: {live_errors}")
        if "swapped: model -> v2" not in output:
            fail(f"reload did not report the swap: {output!r}")

        refreshed_service = FomService.load(
            model_path, args.device, optimization_level=args.level, seed=0
        )
        circuits_2 = [from_qasm(text) for text in qasm[:2]]
        old_answer = service.predict(circuits_2).tolist()
        new_answer = refreshed_service.predict(circuits_2).tolist()
        if old_answer == new_answer:
            fail("fine-tuned model predicts identically; swap is untestable")
        for response in live_responses:
            expected = (
                old_answer
                if response["fingerprint"] == old_fingerprint
                else new_answer
            )
            if response["predictions"] != expected:
                fail(f"mid-swap response matches neither model: {response}")
        print(f"[smoke] hot swap under traffic: {len(live_responses)} "
              "requests answered, all bit-identical to old or new model")

        # Post-swap: unpinned requests serve the new model; the old
        # fingerprint stays pinnable with its pre-swap answers.
        after = client.predict(qasm[:2])
        if after["fingerprint"] == old_fingerprint:
            fail("unpinned request still served by the superseded model")
        if after["predictions"] != new_answer:
            fail("post-swap response not bit-identical to the new model")
        pinned = client.predict(qasm[:2], fingerprint=old_fingerprint)
        if pinned["predictions"] != old_answer:
            fail("pinned old fingerprint no longer answers like the old model")
        for index, request in enumerate(requests):
            repeat = client.predict(request, fingerprint=old_fingerprint)
            if repeat["predictions"] != old_direct[index]:
                fail(f"pinned request {index} drifted after the swap")
        status, health = client.healthz()
        if health["reload"]["swaps"] != 1:
            fail(f"healthz should count exactly one swap: {health['reload']}")
        served_now = {model["fingerprint"]: model["version"]
                      for model in health["models"]}
        if served_now.get(after["fingerprint"]) != "2":
            fail(f"healthz does not list the refreshed model: {health}")
        print("[smoke] post-swap serving v2; old fingerprint still pinnable")

        # The hot-swapped daemon must answer exactly like a daemon booted
        # fresh from the overwritten file.
        restarted = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--model", str(model_path), "--device", args.device,
             "--level", str(args.level), "--port", "0",
             "--batch-deadline-ms", "150", "--max-batch", "64"],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            line = restarted.stdout.readline()
            if "listening on http://" not in line:
                fail(f"restarted daemon failed to announce: {line!r}")
            restart_port = int(line.split("listening on http://")[1]
                               .split(" ")[0].rsplit(":", 1)[1])
            restart_client = ServingClient(port=restart_port)
            try:
                from_restart = restart_client.predict(qasm[:2])
            finally:
                restart_client.close()
            if from_restart["predictions"] != after["predictions"]:
                fail("hot-swapped daemon and restarted daemon disagree:\n"
                     f"  swapped:   {after['predictions']}\n"
                     f"  restarted: {from_restart['predictions']}")
            if from_restart["fingerprint"] != after["fingerprint"]:
                fail("fingerprint mismatch between swap and restart")
        finally:
            restarted.send_signal(signal.SIGTERM)
            try:
                restarted.wait(timeout=120)
            except subprocess.TimeoutExpired:
                restarted.kill()
                restarted.wait(timeout=30)
        print("[smoke] hot-swapped responses bit-identical to a freshly "
              "restarted daemon")
        service = refreshed_service  # the drain check below uses v2
        client.close()

        # Graceful drain: submit a request, SIGTERM while it waits out
        # the 150ms batch deadline, and the response must still arrive.
        drain_result = {}

        def drain_request() -> None:
            drain_client = ServingClient(port=port)
            try:
                drain_result["response"] = drain_client.predict(qasm[:2])
            except Exception as exc:  # noqa: BLE001 - reported below
                drain_result["error"] = exc
            finally:
                drain_client.close()

        drain_thread = threading.Thread(target=drain_request)
        drain_thread.start()
        time.sleep(0.05)  # inside the 150ms deadline window
        daemon.send_signal(signal.SIGTERM)
        drain_thread.join(timeout=600)
        if "error" in drain_result:
            fail(f"in-flight request dropped during drain: "
                 f"{drain_result['error']}")
        direct = service.predict([from_qasm(text) for text in qasm[:2]])
        if drain_result["response"]["predictions"] != direct.tolist():
            fail("drained response not bit-identical")
        print("[smoke] SIGTERM drain answered the in-flight request")

        returncode = daemon.wait(timeout=120)
        if returncode != 0:
            fail(f"daemon exited {returncode} after SIGTERM")
        print("[smoke] daemon exited 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    # Nothing left behind: port closed, no process still references the
    # model path.
    with socket.socket() as probe:
        if probe.connect_ex(("127.0.0.1", port)) == 0:
            fail(f"port {port} still accepting connections after shutdown")
    orphans = processes_referencing(str(model_path), ignore={os.getpid()})
    if orphans:
        fail(f"orphaned processes still reference {model_path}: {orphans}")
    print("[smoke] no orphans, port closed — single-process phase PASSED")

    sharded_phase(model_path, qasm, args)
    print("[smoke] serving smoke PASSED")


def sharded_phase(model_path: Path, qasm: list, args) -> None:
    """``--shards 2``: byte-identity through the dispatcher, streaming,
    and a SIGTERM landing mid-stream — the stream still completes, the
    parent exits 0, and both worker processes are reaped."""
    print("[smoke] starting sharded daemon (--shards 2)")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--model", str(model_path), "--device", args.device,
         "--level", str(args.level), "--port", "0", "--shards", "2",
         "--batch-deadline-ms", "150", "--max-batch", "64"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        line = daemon.stdout.readline()
        if "listening on http://" not in line or "shards: 2" not in line:
            fail(f"sharded daemon failed to announce itself: {line!r}")
        port = int(line.split("listening on http://")[1]
                   .split(" ")[0].rsplit(":", 1)[1])
        client = ServingClient(port=port)
        status, health = client.healthz()
        shards = health.get("shards", {})
        if status != 200 or shards.get("live") != 2:
            fail(f"sharded healthz: {status} {health}")
        worker_pids = [worker["pid"] for worker in shards["workers"]]
        if len(set(worker_pids)) != 2 or daemon.pid in worker_pids:
            fail(f"expected 2 distinct worker pids: {worker_pids}")
        print(f"[smoke] sharded daemon up on port {port} "
              f"(workers {worker_pids})")

        # Concurrent requests through the dispatcher must be
        # bit-identical to a direct service on the same inputs.
        service = FomService.load(
            model_path, args.device, optimization_level=args.level, seed=0
        )
        requests = [qasm[0:3], qasm[3:5], qasm[5:11]]
        responses = [None] * len(requests)
        errors = []

        def drive(index: int) -> None:
            worker_client = ServingClient(port=port)
            try:
                responses[index] = worker_client.predict(requests[index])
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append((index, exc))
            finally:
                worker_client.close()

        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(len(requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        if errors:
            fail(f"sharded concurrent predict failed: {errors}")
        for index, request in enumerate(requests):
            direct = service.predict(
                [from_qasm(text) for text in request]
            ).tolist()
            if responses[index]["predictions"] != direct:
                fail(f"sharded request {index} not bit-identical")
        print(f"[smoke] {len(requests)} concurrent sharded requests "
              "bit-identical to direct FomService calls")

        stats = client.stats()
        per_shard = stats.get("shards", {}).get("per_shard", [])
        if len(per_shard) != 2 or stats["shards"]["live"] != 2:
            fail(f"sharded stats missing per-shard reports: {stats}")
        print(f"[smoke] merged stats OK "
              f"({stats['latency']['samples']} latency samples over "
              f"{[entry['latency_samples'] for entry in per_shard]})")

        # Streaming over the corpus, then SIGTERM mid-stream: the drain
        # lets the stream run to its terminator before workers stop.
        stream = client.predict_stream(qasm, chunk_size=2)
        received = list(next(stream))
        daemon.send_signal(signal.SIGTERM)
        for part in stream:
            received.extend(part)
        direct = service.predict(
            [from_qasm(text) for text in qasm]
        ).tolist()
        if received != direct:
            fail("streamed corpus (SIGTERM mid-stream) not bit-identical")
        print(f"[smoke] SIGTERM mid-stream: all {len(received)} streamed "
              "predictions arrived, bit-identical")
        client.close()

        returncode = daemon.wait(timeout=120)
        if returncode != 0:
            fail(f"sharded daemon exited {returncode} after SIGTERM")
        print("[smoke] sharded daemon exited 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    # No orphans: both spawn workers must be gone with their parent.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        survivors = [
            pid for pid in worker_pids if Path(f"/proc/{pid}").is_dir()
        ]
        if not survivors:
            break
        time.sleep(0.1)
    if survivors:
        fail(f"orphaned shard workers after shutdown: {survivors}")
    with socket.socket() as probe:
        if probe.connect_ex(("127.0.0.1", port)) == 0:
            fail(f"port {port} still accepting connections after shutdown")
    print("[smoke] sharded phase: no orphaned workers, port closed")


if __name__ == "__main__":
    main()
