"""Serving-daemon smoke check: boot, drive, verify, drain, leave nothing.

This is the CI ``serving-smoke`` job's driver (and runnable locally).
Against the artifacts ``predict_service.py --workdir DIR`` leaves
behind, it:

1. starts ``python -m repro serve`` as a real subprocess on a free port,
2. drives it with :class:`~repro.serving.client.ServingClient` —
   ``healthz``, several **concurrent** ``predict`` requests (so dynamic
   batching actually coalesces), a ``foms`` panel, and ``stats``,
3. asserts every daemon response is **bit-identical** to a direct
   :class:`~repro.predictor.service.FomService` call on the same inputs
   (float64 values survive the JSON round-trip exactly),
4. sends SIGTERM while a request is in flight and asserts the response
   still arrives (graceful drain), the process exits 0, and
5. verifies nothing is left behind: the port is closed and no stray
   process still references the workdir.

Exit code 0 = all of the above held.

Run:  python examples/predict_service.py --quick --workdir /tmp/serve
      python examples/serving_smoke.py --workdir /tmp/serve
"""

import argparse
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.circuits.qasm import from_qasm
from repro.predictor import FomService
from repro.serving import ServingClient

FOM_LABELS = (
    "Number of gates", "Circuit depth", "Expected fidelity", "ESP",
    "Proposed approach",
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def processes_referencing(needle: str, ignore: set) -> list:
    """PIDs whose command line mentions ``needle`` (orphan detector)."""
    found = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit() or int(entry.name) in ignore:
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes().replace(b"\0", b" ")
        except OSError:
            continue
        if needle.encode() in cmdline:
            found.append((int(entry.name), cmdline.decode(errors="replace")))
    return found


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", required=True,
        help="directory predict_service.py wrote model.npz + circuits/ into",
    )
    parser.add_argument("--device", default="q20a")
    parser.add_argument("--level", type=int, default=3)
    args = parser.parse_args()

    workdir = Path(args.workdir)
    model_path = workdir / "model.npz"
    qasm_paths = sorted((workdir / "circuits").glob("*.qasm"))
    if not model_path.is_file() or not qasm_paths:
        fail(f"no serving artifacts under {workdir}; "
             "run predict_service.py --workdir first")
    qasm = [path.read_text() for path in qasm_paths]
    # Three concurrent requests out of the corpus (distinct sizes, so the
    # coalesced batch interleaves unequal requests).
    requests = [qasm[0:3], qasm[3:5], qasm[5:11]]

    print(f"[smoke] starting daemon for {model_path}")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--model", str(model_path), "--device", args.device,
         "--level", str(args.level), "--port", "0",
         "--batch-deadline-ms", "150", "--max-batch", "64"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        line = daemon.stdout.readline()
        if "listening on http://" not in line:
            fail(f"daemon failed to announce itself: {line!r}")
        port = int(line.split("listening on http://")[1]
                   .split(" ")[0].rsplit(":", 1)[1])
        print(f"[smoke] daemon up on port {port}")
        client = ServingClient(port=port)

        status, health = client.healthz()
        if status != 200 or health["status"] != "serving":
            fail(f"healthz: {status} {health}")
        print(f"[smoke] healthz OK ({health['models']})")

        # Concurrent predict requests: the 150ms deadline lets them
        # coalesce into one dynamic batch.
        responses = [None] * len(requests)
        errors = []

        def drive(index: int) -> None:
            worker_client = ServingClient(port=port)
            try:
                responses[index] = worker_client.predict(requests[index])
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append((index, exc))
            finally:
                worker_client.close()

        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(len(requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        if errors:
            fail(f"concurrent predict failed: {errors}")

        # Bit-identity: the daemon's answers must equal a direct
        # FomService call on the same per-request inputs.
        service = FomService.load(
            model_path, args.device, optimization_level=args.level, seed=0
        )
        for index, request in enumerate(requests):
            direct = service.predict(
                [from_qasm(text) for text in request]
            ).tolist()
            served = responses[index]["predictions"]
            if served != direct:
                fail(f"request {index} not bit-identical:\n"
                     f"  served: {served}\n  direct: {direct}")
        print(f"[smoke] {len(requests)} concurrent requests bit-identical "
              "to direct FomService calls")

        panel = client.foms(qasm[:3])["foms"]
        direct_panel = service.score_established_foms(
            [from_qasm(text) for text in qasm[:3]]
        )
        for label in FOM_LABELS:
            if panel[label] != direct_panel[label].tolist():
                fail(f"foms[{label!r}] mismatch: {panel[label]} "
                     f"vs {direct_panel[label].tolist()}")
        print("[smoke] foms panel bit-identical")

        stats = client.stats()
        if stats["batches"]["total"] < 1:
            fail(f"no batches recorded: {stats}")
        sizes = stats["batches"]["size_histogram"]
        print(f"[smoke] stats OK: {stats['batches']['requests_total']} "
              f"requests over {stats['batches']['total']} batches "
              f"(sizes {sizes}), stages "
              f"{ {k: round(v, 3) for k, v in stats['latency']['stages_s'].items()} }")
        client.close()

        # Graceful drain: submit a request, SIGTERM while it waits out
        # the 150ms batch deadline, and the response must still arrive.
        drain_result = {}

        def drain_request() -> None:
            drain_client = ServingClient(port=port)
            try:
                drain_result["response"] = drain_client.predict(qasm[:2])
            except Exception as exc:  # noqa: BLE001 - reported below
                drain_result["error"] = exc
            finally:
                drain_client.close()

        drain_thread = threading.Thread(target=drain_request)
        drain_thread.start()
        time.sleep(0.05)  # inside the 150ms deadline window
        daemon.send_signal(signal.SIGTERM)
        drain_thread.join(timeout=600)
        if "error" in drain_result:
            fail(f"in-flight request dropped during drain: "
                 f"{drain_result['error']}")
        direct = service.predict([from_qasm(text) for text in qasm[:2]])
        if drain_result["response"]["predictions"] != direct.tolist():
            fail("drained response not bit-identical")
        print("[smoke] SIGTERM drain answered the in-flight request")

        returncode = daemon.wait(timeout=120)
        if returncode != 0:
            fail(f"daemon exited {returncode} after SIGTERM")
        print("[smoke] daemon exited 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    # Nothing left behind: port closed, no process still references the
    # model path.
    with socket.socket() as probe:
        if probe.connect_ex(("127.0.0.1", port)) == 0:
            fail(f"port {port} still accepting connections after shutdown")
    orphans = processes_referencing(str(model_path), ignore={os.getpid()})
    if orphans:
        fail(f"orphaned processes still reference {model_path}: {orphans}")
    print("[smoke] no orphans, port closed — serving smoke PASSED")


if __name__ == "__main__":
    main()
