"""Train the paper's proposed figure of merit and use it in compilation.

Reproduces the workflow of Fig. 2 on a reduced benchmark suite (2-10
qubits so the example finishes in about a minute):

1. compile + execute the suite on the emulated Q20-A QPU,
2. label every circuit with its Hellinger distance,
3. train the random-forest estimator (80/20 split, 3-fold CV, grid search),
4. report the Table-I-style correlations and the Fig.-3 feature importances,
5. save the trained model, reload it, and use it as a figure of merit to
   choose between compilations of an unseen circuit.

Run:  python examples/train_fom_estimator.py [--max-qubits N] [--quick]
           [--model-path PATH]

``--quick`` (used by the CI examples smoke job) shrinks the suite and the
hyper-parameter grid so the end-to-end flow finishes in tens of seconds.
"""

import argparse
import tempfile
from pathlib import Path

from repro.bench import build_suite
from repro.compiler import compile_circuit
from repro.evaluation import grouped_importances, load_model, save_model, sorted_groups
from repro.fom import expected_fidelity, feature_vector
from repro.hardware import make_q20a
from repro.ml import pearson_r, train_test_split
from repro.predictor import HellingerEstimator, build_dataset
from repro.simulation import execute_and_label


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-qubits", type=int, default=10)
    parser.add_argument(
        "--quick", action="store_true",
        help="smallest faithful run: tiny grid, fewer candidate seeds",
    )
    parser.add_argument(
        "--model-path", default=None,
        help="where to save the trained estimator "
             "(default: a temporary directory)",
    )
    args = parser.parse_args()

    device = make_q20a()
    suite = build_suite(max_qubits=args.max_qubits)
    print(f"Benchmark suite: {len(suite)} circuits (2-{args.max_qubits} qubits)")

    # 1-2. Features + Hellinger labels (the expensive part: compilation,
    # statevector simulation, and noisy execution per circuit).
    dataset = build_dataset(suite, device, shots=2000, seed=0)
    print(f"Labelled dataset on {device.name}: {len(dataset)} circuits "
          f"(compiled depth < 1000)")
    print(f"label range: [{dataset.y.min():.3f}, {dataset.y.max():.3f}]")
    print()

    # 3. Train with the paper's protocol.
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.2, seed=0
    )
    if args.quick:
        grid = {
            "n_estimators": [25],
            "max_depth": [None, 10],
            "min_samples_leaf": [1],
            "min_samples_split": [2],
        }
    else:
        grid = {
            "n_estimators": [50, 100],
            "max_depth": [None, 10],
            "min_samples_leaf": [1, 2],
            "min_samples_split": [2],
        }
    estimator = HellingerEstimator(param_grid=grid, seed=0).fit(X_train, y_train)
    print(f"grid search best params: {estimator.best_params_}")
    print(f"cross-validation Pearson: {estimator.cv_score_:.3f}")
    print(f"held-out test Pearson:    {estimator.score(X_test, y_test):.3f}")

    # Persist the trained model and work with the reloaded copy from here
    # on — predictions of a loaded model are bit-identical to the
    # original's.
    model_path = Path(
        args.model_path
        or Path(tempfile.mkdtemp(prefix="repro_")) / "hellinger_q20a.npz"
    )
    save_model(estimator, model_path)
    estimator = load_model(model_path)
    print(f"model saved to {model_path} and reloaded")

    # Compare with the established figures of merit on the same labels.
    for fom in ("Number of gates", "Circuit depth", "Expected fidelity", "ESP"):
        r = abs(pearson_r(dataset.fom_column(fom), dataset.y))
        print(f"  {fom:<20} |r| = {r:.3f}")
    print()

    # 4. Feature importances, grouped like Fig. 3.
    print("Feature importance by category (Fig. 3 grouping):")
    grouped = grouped_importances(estimator.feature_importances_)
    for group, value in sorted_groups(grouped):
        bar = "#" * int(round(40 * value / max(grouped.values())))
        print(f"  {group:<18} {value:.3f} {bar}")
    print()

    # 5. Use the estimator as a figure of merit: pick the compilation seed
    # with the smallest *predicted* Hellinger distance.
    from repro.bench.algorithms import qftentangled

    num_candidates = 2 if args.quick else 5
    candidate = qftentangled(7)
    print(f"Choosing between {num_candidates} compilations of qftentangled_7:")
    best = None
    for seed in range(num_candidates):
        result = compile_circuit(candidate, device, optimization_level=2,
                                 seed=seed)
        predicted = float(
            estimator.predict(feature_vector(result.circuit)[None, :])[0]
        )
        measured, _ = execute_and_label(
            result.circuit, device, shots=2000, seed=99
        )
        fid = expected_fidelity(result.circuit, device)
        marker = ""
        if best is None or predicted < best[0]:
            best = (predicted, seed)
            marker = "  <- predicted best so far"
        print(
            f"  seed {seed}: predicted d = {predicted:.3f}, "
            f"measured d = {measured:.3f}, F_exp = {fid:.3f}{marker}"
        )
    print(f"\nSelected compilation seed {best[1]} "
          f"(predicted Hellinger {best[0]:.3f})")


if __name__ == "__main__":
    main()
