"""The compilation pipeline of the paper's Fig. 1, step by step.

Reproduces the running example of Section II: a 4-qubit circuit is mapped
onto a square-layout QPU that misses one link (between Q1 and Q3), its gates
are synthesized into the native PRX/CZ set, and the optimization passes
shrink the result.  The example also shows the effect the paper motivates:
crosstalk makes the nominally "better" (smaller) circuit perform *worse*,
which is exactly what the established figures of merit cannot see.

Run:  python examples/compilation_pipeline.py
"""

from repro.circuits import QuantumCircuit
from repro.compiler import (
    Decompose,
    NativeSynthesis,
    OptimizationLoop,
    PassManager,
    PropertySet,
    SabreRouting,
    TrivialLayout,
    VirtualRZ,
    compile_circuit,
)
from repro.fom import expected_fidelity
from repro.hardware import CouplingMap, NoiseProfile, make_device
from repro.simulation import execute_and_label, ideal_distribution


def make_square_device():
    """Fig. 1's QPU: 4 qubits on a square, missing the Q1-Q3 link."""
    coupling = CouplingMap(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
    return make_device(
        "square4",
        coupling,
        seed=11,
        noise=NoiseProfile(crosstalk_two_two=0.02, crosstalk_two_one=0.005),
    )


def fig1_circuit() -> QuantumCircuit:
    """The example circuit of Fig. 1 (H + CX structure)."""
    circuit = QuantumCircuit(4, name="fig1")
    circuit.h(0)
    circuit.h(2)
    circuit.h(3)
    circuit.cx(0, 2)
    circuit.cx(2, 3)
    circuit.h(2)
    circuit.h(3)
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


def main() -> None:
    device = make_square_device()
    circuit = fig1_circuit()
    print("Original circuit:")
    print(circuit.draw())
    print()

    # Walk the pipeline pass by pass (Fig. 1a-1d).
    body = circuit.without_directives()
    properties = PropertySet()
    manager = PassManager([
        Decompose(),                       # gate synthesis prep
        TrivialLayout(device.coupling),    # (a) qubit mapping
        SabreRouting(device.coupling, seed=0),  # (a) SWAP insertion
        Decompose(),
        OptimizationLoop(),                # (c) circuit optimization
        NativeSynthesis(),                 # (b) gate synthesis to PRX/CZ
        VirtualRZ(),                       # QPU-specific: virtual RZ
    ])
    staged = manager.run(body, properties)
    print("Pass-by-pass progress (size / depth):")
    for record in manager.history:
        print(
            f"  {record['pass']:<22} "
            f"{record['size_before']:>3} -> {record['size_after']:<3}  "
            f"depth {record['depth_before']:>3} -> {record['depth_after']}"
        )
    print()
    print("Native circuit:")
    print(staged.draw())
    print()

    # Full compile at each optimization level.
    print("Optimization level sweep:")
    print(f"{'level':<7}{'gates':>7}{'CZ':>5}{'depth':>7}{'F_exp':>8}{'Hellinger':>11}")
    ideal = ideal_distribution(circuit)
    for level in range(4):
        result = compile_circuit(circuit, device, optimization_level=level, seed=3)
        fidelity = expected_fidelity(result.circuit, device)
        distance, _ = execute_and_label(
            result.circuit, device, shots=4000, seed=level, ideal=ideal
        )
        print(
            f"{level:<7}{result.circuit.size():>7}"
            f"{result.circuit.num_nonlocal_gates():>5}"
            f"{result.circuit.depth():>7}{fidelity:>8.4f}{distance:>11.3f}"
        )
    print()
    print(
        "Note how expected fidelity ranks the candidates, yet the measured\n"
        "Hellinger distance also reflects crosstalk and decoherence that the\n"
        "established figures of merit do not capture (Section III)."
    )


if __name__ == "__main__":
    main()
