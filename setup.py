"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``pip install -e .`` on toolchains that have ``wheel``) installs the package;
all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
